"""Soak-mode bench: replan latency and completion rate under churn.

Runs the long-running digital-twin soak loop (DESIGN.md §13) at three churn
intensities and records, per intensity:

- **determinism** — two same-seed incremental runs must produce
  byte-identical canonical event logs (asserted, recorded);
- **replan latency** — p50/p99 wall-clock milliseconds over all replanning
  rounds, plus the median over *successful* rounds (rounds that produced a
  replacement plan) split by degradation-ladder rung;
- **goal completion rate** — completed over resolved (completed + shed)
  requests, aggregated across seeds;
- **incremental vs cold** — the same churn replayed with
  ``replan_mode="cold"`` (from-scratch GA every round).  The headline
  assertion: the incremental ladder's median successful-replan latency is
  lower than the cold baseline's, pooled across intensities — plan repair
  resolves most rounds in well under a millisecond while a cold GA replan
  costs hundreds.

Usage::

    PYTHONPATH=src python benchmarks/bench_soak.py [--quick]

Results go to ``benchmarks/results/BENCH_soak.json``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.obs import MetricsRegistry, Tracer
from repro.obs.sinks import MemoryRecorder
from repro.soak import SoakConfig, run_soak

RESULTS_DIR = Path(__file__).parent / "results"

#: The three churn intensities of the acceptance criteria.
INTENSITIES = (
    ("low", "machine-crash:p=0.3,restore=60"),
    ("medium", "machine-crash:p=0.7,restore=60;partition:p=0.3"),
    ("high", "machine-crash:p=0.9,restore=40;partition:p=0.6"),
)

#: Rungs that produced a replacement plan (vs "none" = shed).
SUCCESS_RUNGS = ("repair", "ga-warm", "ga-cold", "greedy")


def _percentile(values, q):
    if not values:
        return None
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[idx]


def _run(config: SoakConfig):
    """One soak run with a memory trace; returns (report, replan events)."""
    recorder = MemoryRecorder()
    report = run_soak(config, tracer=Tracer([recorder]), metrics=MetricsRegistry())
    replans = [e for e in recorder.events if e.kind == "replan-latency"]
    return report, replans


def bench_intensity(name, faults, seeds, duration, arrival):
    """All runs for one churn intensity; returns its results dict."""
    out = {
        "faults": faults,
        "duration_s": duration,
        "arrival": arrival,
        "seeds": list(seeds),
    }
    completed = shed = arrived = 0
    all_latencies_ms = {"incremental": [], "cold": []}
    success_by_rung = {}
    success_ms = {"incremental": [], "cold": []}
    deterministic = True
    wall = {"incremental": 0.0, "cold": 0.0}
    for seed in seeds:
        base = dict(duration=duration, arrival=arrival, faults=faults, seed=seed)
        t0 = time.perf_counter()
        report, replans = _run(SoakConfig(**base))
        wall["incremental"] += time.perf_counter() - t0
        rerun, _ = _run(SoakConfig(**base))
        if report.event_log() != rerun.event_log():
            deterministic = False
        completed += report.completed
        shed += report.shed
        arrived += report.arrived
        for ev in replans:
            ms = ev.seconds * 1e3
            all_latencies_ms["incremental"].append(ms)
            if ev.rung in SUCCESS_RUNGS:
                success_ms["incremental"].append(ms)
                success_by_rung.setdefault(ev.rung, []).append(ms)
        t0 = time.perf_counter()
        cold_report, cold_replans = _run(SoakConfig(**base, replan_mode="cold"))
        wall["cold"] += time.perf_counter() - t0
        for ev in cold_replans:
            ms = ev.seconds * 1e3
            all_latencies_ms["cold"].append(ms)
            if ev.rung in SUCCESS_RUNGS:
                success_ms["cold"].append(ms)
    resolved = completed + shed
    out["same_seed_logs_byte_identical"] = deterministic
    out["requests"] = {"arrived": arrived, "completed": completed, "shed": shed}
    out["goal_completion_rate"] = round(completed / resolved, 4) if resolved else None
    for mode in ("incremental", "cold"):
        lat = all_latencies_ms[mode]
        out[mode] = {
            "replan_rounds": len(lat),
            "replan_latency_p50_ms": round(_percentile(lat, 50), 3) if lat else None,
            "replan_latency_p99_ms": round(_percentile(lat, 99), 3) if lat else None,
            "successful_replans": len(success_ms[mode]),
            "successful_median_ms": (
                round(statistics.median(success_ms[mode]), 3) if success_ms[mode] else None
            ),
            "wall_s": round(wall[mode], 2),
        }
    out["incremental"]["rung_median_ms"] = {
        rung: round(statistics.median(ms), 3)
        for rung, ms in sorted(success_by_rung.items())
    }
    return out, success_ms


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="one seed, short horizon")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args(argv)

    seeds = (7,) if args.quick else (3, 7, 11)
    duration = 150.0 if args.quick else 300.0
    arrival = "arrival:rate=0.08"

    results = {
        "bench": "soak replan latency under churn",
        "quick": args.quick,
        "seeds": list(seeds),
        "duration_s": duration,
        "arrival": arrival,
        "notes": (
            "Latencies are wall-clock milliseconds per replanning round "
            "(simulated time is unaffected: replans are instantaneous on the "
            "soak clock, which is what keeps same-seed logs byte-identical). "
            "'successful' rounds produced a replacement plan; 'none' rounds "
            "shed. The incremental ladder is repair -> warm-GA -> greedy; "
            "cold replans from scratch with the GA every round."
        ),
        "intensities": {},
    }
    pooled = {"incremental": [], "cold": []}
    for name, faults in INTENSITIES:
        print(f"[{name}] {faults}", flush=True)
        section, success_ms = bench_intensity(name, faults, seeds, duration, arrival)
        results["intensities"][name] = section
        for mode in pooled:
            pooled[mode].extend(success_ms[mode])
        assert section["same_seed_logs_byte_identical"], (
            f"{name}: same-seed soak runs diverged — determinism regression"
        )
        print(
            f"  completion={section['goal_completion_rate']}  "
            f"incr p50/p99={section['incremental']['replan_latency_p50_ms']}"
            f"/{section['incremental']['replan_latency_p99_ms']}ms  "
            f"cold p50/p99={section['cold']['replan_latency_p50_ms']}"
            f"/{section['cold']['replan_latency_p99_ms']}ms",
            flush=True,
        )

    incr_median = (
        statistics.median(pooled["incremental"]) if pooled["incremental"] else None
    )
    cold_median = statistics.median(pooled["cold"]) if pooled["cold"] else None
    results["pooled_successful_median_ms"] = {
        "incremental": round(incr_median, 3) if incr_median is not None else None,
        "cold": round(cold_median, 3) if cold_median is not None else None,
    }
    if incr_median is not None and cold_median is not None:
        assert incr_median < cold_median, (
            f"incremental median {incr_median:.3f}ms not below cold "
            f"{cold_median:.3f}ms — the ladder stopped paying for itself"
        )
        results["incremental_vs_cold_speedup"] = round(cold_median / incr_median, 1)

    out_path = Path(args.out) if args.out else RESULTS_DIR / "BENCH_soak.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
