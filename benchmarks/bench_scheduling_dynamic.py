"""Bench: dynamic (on-line) mapping heuristics — Maheswaran et al. [12].

Immediate mode (map on arrival) vs batch mode (map at intervals) over a
Poisson arrival stream on a heterogeneous ETC matrix.
"""

import os

from conftest import emit

from repro.analysis import Table
from repro.core import make_rng
from repro.scheduling import (
    BATCH_HEURISTICS,
    ETCParams,
    IMMEDIATE_HEURISTICS,
    batch_mode,
    generate_etc,
    immediate_mode,
    poisson_arrivals,
)


def _run(full: bool):
    n_tasks, n_machines = (512, 16) if full else (128, 8)
    rng = make_rng(5001)
    etc = generate_etc(ETCParams(n_tasks=n_tasks, n_machines=n_machines), rng)
    # Arrival rate chosen so the system is moderately loaded.
    mean_exec = float(etc.min(axis=1).mean())
    rate = n_machines / mean_exec * 0.5
    arrivals = poisson_arrivals(n_tasks, rate=rate, rng=rng)
    table = Table(
        "Dynamic mapping: makespan by heuristic",
        ["Mode", "Heuristic", "Makespan"],
    )
    for name in IMMEDIATE_HEURISTICS:
        r = immediate_mode(etc, arrivals, name)
        table.add_row("immediate", name, round(r.makespan, 1))
    interval = float(arrivals[-1].time / 20)
    for name in BATCH_HEURISTICS:
        r = batch_mode(etc, arrivals, interval=interval, heuristic=name)
        table.add_row(f"batch (Δ={interval:.0f}s)", name, round(r.makespan, 1))
    return table


def test_dynamic_mapping(benchmark, results_dir):
    full = os.environ.get("REPRO_FULL", "") == "1"
    table = benchmark.pedantic(_run, args=(full,), rounds=1, iterations=1)
    emit(table, results_dir, "scheduling_dynamic")
    spans = dict(zip(table.column("Heuristic"), table.column("Makespan")))
    assert spans["MCT"] <= spans["OLB"]  # informed beats blind
