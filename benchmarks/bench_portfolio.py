"""Portfolio race bench: time-to-first-solution vs the homogeneous ring.

Races the heterogeneous portfolio of DESIGN.md §14 — two GA islands with
different crossovers plus a resumable greedy best-first search island,
adaptive migration, first-solution cancellation — against the homogeneous
ring island model (`run_islands`, ``stop_on_goal``) on Hanoi-7, the
paper's hardest Hanoi instance.  Per seed the bench records:

- ``ttfs_s`` — wall-clock seconds until the first valid plan (the ring's
  number is its full elapsed run when it never solves, i.e. a *lower*
  bound on its true TTFS, which only strengthens the comparison);
- the anytime-quality curve — every incumbent improvement the portfolio
  streamed, as ``(wall_s, goal_fitness, plan_length)`` triples;
- cleanliness — after cancellation no worker threads survive, no child
  processes are orphaned, and ``/dev/shm`` holds no new segments.

The headline number, asserted: over >= 3 seeds the portfolio's median
TTFS is at least 2x faster than the ring baseline's.  Results go to
``benchmarks/results/BENCH_portfolio.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_portfolio.py [--quick]

Also exposes one pytest-benchmark case (a quick Hanoi-5 race) so the file
participates in the microbench suite.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import statistics
import sys
import threading
from pathlib import Path

from repro.core import (
    GAConfig,
    IslandConfig,
    PortfolioSpec,
    StrategySpec,
    make_rng,
    run_islands,
    run_portfolio,
)
from repro.domains import HanoiDomain

RESULTS_DIR = Path(__file__).parent / "results"

SEEDS = (11, 12, 13)


def make_config(quick: bool) -> GAConfig:
    """Per-island GA budget on Hanoi-7 (the paper's genome scale)."""
    return GAConfig(
        population_size=20 if quick else 50,
        generations=15 if quick else 40,
        max_len=635,
        init_length=127,
    )


def shm_entries() -> set:
    """Names currently present in /dev/shm (empty set when unsupported)."""
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return set()
    return {p.name for p in shm.iterdir()}


def portfolio_spec(cfg: GAConfig) -> PortfolioSpec:
    return PortfolioSpec(
        strategies=(
            StrategySpec(kind="ga", ga=cfg),
            StrategySpec(kind="ga", ga=cfg.replace(crossover="state-aware")),
            StrategySpec(kind="search", algorithm="gbfs", expansions_per_tick=64),
        ),
        interval=5,
        migration_size=max(1, cfg.population_size // 10),
    )


def run_ring(domain, cfg: GAConfig, seed: int) -> dict:
    """The homogeneous baseline: 3 ring-migrating islands, stop on goal."""
    config = IslandConfig(
        n_islands=3,
        migration_interval=5,
        migration_size=max(1, cfg.population_size // 10),
        island=cfg,
    )
    result = run_islands(domain, config, make_rng(seed))
    return {
        "seed": seed,
        "solved": result.solved,
        "generations": result.generations_run,
        # When the ring never solves, elapsed is a lower bound on its TTFS.
        "ttfs_s": round(result.elapsed_seconds, 6),
        "ttfs_is_lower_bound": not result.solved,
    }


def run_race(domain, cfg: GAConfig, seed: int) -> dict:
    """One portfolio race, with post-run cleanliness assertions."""
    threads_before = threading.active_count()
    shm_before = shm_entries()
    result = run_portfolio(domain, portfolio_spec(cfg), make_rng(seed))
    assert result.solved, f"portfolio failed to solve Hanoi-7 (seed {seed})"
    assert result.cancelled >= 1, "cancellation never fired"
    # First-solution cancellation must leave nothing behind.
    assert threading.active_count() == threads_before, "orphaned worker threads"
    assert not multiprocessing.active_children(), "orphaned worker processes"
    leaked = shm_entries() - shm_before
    assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"
    return {
        "seed": seed,
        "winner": result.winner,
        "winner_strategy": result.strategies[result.winner],
        "cancelled": result.cancelled,
        "ticks_run": result.ticks_run,
        "rounds": result.rounds,
        "migrations": result.migrations,
        "plan_length": len(result.plan),
        "ttfs_s": round(result.first_solution_wall_s, 6),
        "anytime_curve": [
            [round(inc.wall_s, 6), round(inc.goal_fitness, 4), len(inc.plan)]
            for inc in result.incumbents
        ],
    }


def run_bench(quick: bool = False) -> dict:
    domain = HanoiDomain(7)
    cfg = make_config(quick)
    races, rings = [], []
    for seed in SEEDS:
        race = run_race(domain, cfg, seed)
        ring = run_ring(domain, cfg, seed)
        races.append(race)
        rings.append(ring)
        print(f"[seed {seed}] portfolio TTFS {race['ttfs_s']}s "
              f"(winner {race['winner_strategy']}, {race['cancelled']} cancelled) "
              f"vs ring {ring['ttfs_s']}s"
              f"{' (unsolved lower bound)' if ring['ttfs_is_lower_bound'] else ''}")
    median_portfolio = statistics.median(r["ttfs_s"] for r in races)
    median_ring = statistics.median(r["ttfs_s"] for r in rings)
    speedup = round(median_ring / median_portfolio, 2)
    assert speedup >= 2.0, (
        f"portfolio median TTFS only {speedup}x faster than the ring baseline"
    )
    return {
        "bench": "portfolio race",
        "quick": quick,
        "domain": "hanoi-7",
        "seeds": list(SEEDS),
        "population_size": cfg.population_size,
        "generations": cfg.generations,
        "strategies": [s.label for s in portfolio_spec(cfg).strategies],
        "notes": (
            "ttfs_s is wall-clock seconds to the first valid plan; the ring "
            "baseline's value is its whole run when it never solves, so the "
            "reported speedup is a floor. anytime_curve lists every "
            "incumbent improvement the portfolio streamed as "
            "(wall_s, goal_fitness, plan_length)."
        ),
        "portfolio": races,
        "ring_baseline": rings,
        "median_ttfs_portfolio_s": median_portfolio,
        "median_ttfs_ring_s": median_ring,
        "ttfs_speedup": speedup,
        "clean_shutdown": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small populations / short ring budget (CI smoke)",
    )
    args = parser.parse_args(argv)
    report = run_bench(quick=args.quick)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_portfolio.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out}")
    print(
        f"hanoi7: portfolio median TTFS {report['median_ttfs_portfolio_s']}s "
        f"vs ring {report['median_ttfs_ring_s']}s -> "
        f"{report['ttfs_speedup']}x faster to first solution"
    )
    return 0


# -- pytest-benchmark hook -----------------------------------------------------


def test_portfolio_race_hanoi5(benchmark):
    """A quick 2-GA + 1-search race on Hanoi-5 under the bench timer."""
    domain = HanoiDomain(5)
    cfg = GAConfig(population_size=20, generations=15, max_len=155, init_length=31)

    def race():
        result = run_portfolio(domain, portfolio_spec(cfg), make_rng(5))
        assert result.solved
        return result

    result = benchmark.pedantic(race, rounds=1, iterations=1)
    assert result.cancelled >= 1


if __name__ == "__main__":
    sys.exit(main())
