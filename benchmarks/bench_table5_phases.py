"""Bench: regenerate Table 5 (phase of first valid solution, 3x3 puzzle).

Paper's reported counts over 50 runs:

    Phase  Random  State-aware  Mixed
    1      7       33           36
    2      40      13           11
    3      1       0            1
    4      0       2            0
    5      0       0            0

Shape asserted: nearly all solutions arrive within the first two phases,
and state-aware/mixed reach phase-1 solutions at least as often as random.

The trial grid, per-trial seeds and aggregation are the declarative
``table5-phases`` spec (:mod:`repro.exp.paper`); this bench is a thin
wrapper that runs the sweep in memory and asserts the shape.
"""

from conftest import emit

from repro.exp import run_inline


def test_table5_phase_distribution(benchmark, scale, results_dir):
    result = benchmark.pedantic(
        run_inline, args=("table5-phases",), kwargs={"scale": scale}, rounds=1, iterations=1
    )
    assert not result.failed
    table = result.table()
    emit(table, results_dir, "table5_phases")

    # Aggregated across crossovers (robust at small run counts): most
    # solutions land in the first two phases.
    per_phase = [
        sum(table.column(col)[i] for col in ("Random", "State-aware", "Mixed"))
        for i in range(len(table.rows))
    ]
    total = sum(per_phase)
    if total:
        assert sum(per_phase[:2]) >= 0.5 * total
