"""Ablation bench: goal/cost fitness weight sweep (paper uses 0.9/0.1)."""

from conftest import emit

from repro.exp.defaults import ABLATION_SEEDS

from repro.analysis import weight_sweep


def test_weight_ablation(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        weight_sweep, args=(scale,), kwargs={"seed": ABLATION_SEEDS["weights"]}, rounds=1, iterations=1
    )
    emit(table, results_dir, "ablation_weights")
    assert all(0.0 <= f <= 1.0 for f in table.column("Avg Goal Fitness"))
