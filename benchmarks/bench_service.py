"""Planning-service load harness: latency, shed rate, cache/fairness ablations.

Replays seeded mixed-scenario request streams against an in-process
:class:`~repro.service.scheduler.RunScheduler` + :class:`~repro.service.
scheduler.ServicePool` (no TCP — this measures the scheduling and cache
layers, not socket syscalls) and writes ``BENCH_service.json``:

- **repeat** — a closed-loop stream of recurring same-domain requests
  (a small pool of seeds cycled many times, the service's recurring-query
  shape), run twice: warm cross-request engine cache on vs off.  Headline:
  ``warm_speedup_p50`` — the cold/warm p50 latency ratio, asserted >= 1.5
  (the warm engine replays repeated populations out of its fitness memo).
- **mixed** — an open-loop Poisson request stream (``arrival:`` clauses
  from the :mod:`repro.faults` spec grammar, one clause per tenant, same
  SeedSequence-per-clause idiom as the soak's ``ArrivalStream``) mixing
  domains, sizes and seeds across three tenants — one of them a flooder.
  Run three ways: fair-share on (baseline), fair-share off, cold cache.
  Per variant: p50/p99 latency (overall and per tenant), shed rate,
  sustained evals/sec over the scenario makespan.
- **determinism** — same-seed requests run serially (``drain()``) and
  concurrently (worker pool), asserting byte-identical canonical traces
  (wall-clock and cache-warmth payloads masked) — the exactness contract
  the warm cache rides on.
- **thread_scaling** — a saturated closed-loop batch of vector-decode
  requests across ``workers in (1, 2, 4)`` × decode backend (numpy vs
  fused, DESIGN.md §16), reporting sustained evals/sec per cell.  The
  fused walk releases the GIL under numba, so its throughput should scale
  with workers where the numpy walk's cannot; without numba the fused
  column resolves to numpy and the cells document that (the CI speed leg
  measures the real thing).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick | --full]

``--full`` replays thousands of requests; the default a few hundred;
``--quick`` is the CI smoke size.  Also exposes one pytest-benchmark case
(a warm scheduling slice) so the file participates in the microbench
suite.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.fused_decode import numba_available
from repro.faults.spec import parse_fault_spec
from repro.obs import MetricsRegistry
from repro.service import (
    DONE,
    EngineCache,
    PlanRequest,
    RunScheduler,
    ServicePool,
    SHED,
)

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SEED = 20030422  # the paper's venue date, like the other benches

#: tenant name per arrival clause (clause order in the spec below).
TENANTS = ("alpha", "bravo", "flood")

#: (domain, size, budget, population) cycled per tenant for the mixed load.
CATALOG: Dict[str, Tuple[Tuple[str, int, int, int], ...]] = {
    "alpha": (("hanoi", 4, 15, 30), ("hanoi", 5, 12, 30)),
    "bravo": (("tile", 3, 12, 30), ("hanoi", 4, 15, 30)),
    "flood": (("hanoi", 4, 10, 30),),
}


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of *values* (0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def arrival_schedule(spec: str, seed: int) -> List[Tuple[float, int]]:
    """``(at_seconds, clause_index)`` arrivals from ``arrival:`` clauses.

    Each clause is an independent Poisson process capped by its ``n=``
    count, drawn from a ``SeedSequence(seed, spawn_key=(1, clause_index))``
    stream — the soak ``ArrivalStream`` idiom, minus the grid coupling.
    The merged schedule is time-sorted (clause order breaking ties).
    """
    parsed = parse_fault_spec(spec)
    out: List[Tuple[float, int]] = []
    for clause_index, clause in enumerate(parsed.arrival_clauses):
        rng = np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(1, clause_index)))
        rate = clause["rate"]
        cap = int(clause["n"])
        if cap <= 0:
            raise ValueError("bench arrival clauses must be capped with n=")
        t = 0.0
        for _ in range(cap):
            t += float(rng.exponential(1.0 / rate))
            out.append((t, clause_index))
    out.sort(key=lambda item: (item[0], item[1]))
    return out


def mixed_request(index: int, clause_index: int, seed: int) -> PlanRequest:
    """The deterministic request for one arrival of the mixed stream."""
    tenant = TENANTS[clause_index]
    domain, size, budget, population = CATALOG[tenant][index % len(CATALOG[tenant])]
    return PlanRequest(
        domain=domain,
        size=size,
        tenant=tenant,
        seed=seed + index,
        budget=budget,
        population=population,
    )


# -- scenarios -----------------------------------------------------------------


def run_repeat(
    warm: bool, n_requests: int, distinct_seeds: int, seed: int
) -> Tuple[dict, List[float]]:
    """Closed-loop recurring-request stream; returns (summary, latencies_ms)."""
    metrics = MetricsRegistry()
    scheduler = RunScheduler(
        engine_cache=EngineCache(enabled=warm, metrics=metrics),
        metrics=metrics,
        queue_cap=n_requests + 1,
    )
    latencies: List[float] = []
    for i in range(n_requests):
        run = scheduler.submit(
            PlanRequest(
                domain="hanoi",
                size=6,
                seed=seed + (i % distinct_seeds),
                budget=15,
                population=40,
            )
        )
        scheduler.drain()
        assert run.state == DONE, (run.state, run.error)
        latencies.append((run.finished_s - run.arrival_s) * 1e3)
    evals = metrics.counters.get("evals")
    skipped = metrics.counters.get("evals_skipped")
    summary = {
        "warm_cache": warm,
        "requests": n_requests,
        "distinct_seeds": distinct_seeds,
        "p50_ms": round(percentile(latencies, 50), 3),
        "p99_ms": round(percentile(latencies, 99), 3),
        "evals": evals.value if evals else 0,
        "evals_skipped": skipped.value if skipped else 0,
        "cache": scheduler.engine_cache.stats(),
    }
    return summary, latencies


def run_mixed(
    spec: str,
    seed: int,
    fair_share: bool = True,
    warm: bool = True,
    workers: int = 2,
    queue_cap: int = 12,
) -> dict:
    """Open-loop Poisson replay; returns latency/shed/throughput summary."""
    metrics = MetricsRegistry()
    scheduler = RunScheduler(
        engine_cache=EngineCache(enabled=warm, metrics=metrics),
        metrics=metrics,
        queue_cap=queue_cap,
        fair_share=fair_share,
    )
    schedule = arrival_schedule(spec, seed)
    runs = []
    started = time.perf_counter()
    with ServicePool(scheduler, workers=workers):
        for at, clause_index in schedule:
            delay = at - (time.perf_counter() - started)
            if delay > 0:
                time.sleep(delay)
            runs.append(
                scheduler.submit(mixed_request(len(runs), clause_index, seed))
            )
        assert scheduler.wait_idle(timeout=600), "mixed scenario never went idle"
    makespan = time.perf_counter() - started
    per_tenant: Dict[str, dict] = {}
    all_latencies: List[float] = []
    for tenant in TENANTS:
        mine = [r for r in runs if r.request.tenant == tenant]
        done = [(r.finished_s - r.arrival_s) * 1e3 for r in mine if r.state == DONE]
        all_latencies.extend(done)
        per_tenant[tenant] = {
            "requests": len(mine),
            "completed": len(done),
            "shed": sum(1 for r in mine if r.state == SHED),
            "p50_ms": round(percentile(done, 50), 3),
            "p99_ms": round(percentile(done, 99), 3),
        }
    shed = sum(1 for r in runs if r.state == SHED)
    evals = metrics.counters.get("evals")
    return {
        "fair_share": fair_share,
        "warm_cache": warm,
        "workers": workers,
        "queue_cap": queue_cap,
        "requests": len(runs),
        "completed": sum(1 for r in runs if r.state == DONE),
        "shed": shed,
        "shed_rate": round(shed / len(runs), 4) if runs else 0.0,
        "p50_ms": round(percentile(all_latencies, 50), 3),
        "p99_ms": round(percentile(all_latencies, 99), 3),
        "makespan_s": round(makespan, 3),
        "evals_per_sec": round((evals.value if evals else 0) / makespan, 1),
        "tenants": per_tenant,
    }


def run_determinism(seed: int, n_requests: int = 6, workers: int = 3) -> dict:
    """Assert serial vs concurrent canonical traces are byte-identical."""

    def traces(concurrent: bool):
        scheduler = RunScheduler(metrics=MetricsRegistry(), queue_cap=n_requests + 1)
        runs = [
            scheduler.submit(
                PlanRequest(
                    domain="hanoi", size=5, seed=seed + (i % 3), budget=20, population=30
                )
            )
            for i in range(n_requests)
        ]
        if concurrent:
            with ServicePool(scheduler, workers=workers):
                assert scheduler.wait_idle(timeout=300)
        else:
            scheduler.drain()
        assert all(r.state == DONE for r in runs)
        return [r.canonical_trace() for r in runs]

    serial = traces(concurrent=False)
    concurrent = traces(concurrent=True)
    assert serial == concurrent, "serial vs concurrent canonical traces diverged"
    return {
        "requests": n_requests,
        "workers": workers,
        "events_compared": sum(len(t) for t in serial),
        "identical": True,
    }


def run_thread_scaling(
    seed: int, n_requests: int, workers_grid: Tuple[int, ...] = (1, 2, 4)
) -> dict:
    """Saturated vector-request batch across workers × decode backend.

    Every cell replays the identical batch (``vector=True``, distinct
    seeds so the warm cache cannot interfere — the vector path is
    stateless anyway) and reports sustained evals/sec over the batch
    makespan plus the scaling ratio against that backend's one-worker
    cell.
    """
    cells: Dict[str, dict] = {}
    for requested in ("numpy", "fused"):
        # Without numba a hard "fused" request fails by design; the cell
        # then measures the auto-probe resolution (numpy) and says so.
        available = requested != "fused" or numba_available()
        wire: Optional[str] = requested if available else None
        resolved = requested if available else "numpy"
        base_eps: Optional[float] = None
        for workers in workers_grid:
            metrics = MetricsRegistry()
            scheduler = RunScheduler(metrics=metrics, queue_cap=n_requests + 1)
            runs = [
                scheduler.submit(
                    PlanRequest(
                        domain="hanoi",
                        size=6,
                        seed=seed + i,
                        budget=12,
                        population=40,
                        vector=True,
                        backend=wire,
                    )
                )
                for i in range(n_requests)
            ]
            started = time.perf_counter()
            with ServicePool(scheduler, workers=workers, idle_wait=5.0):
                assert scheduler.wait_idle(timeout=600), "scaling cell stalled"
            makespan = time.perf_counter() - started
            assert all(r.state == DONE for r in runs), [r.error for r in runs]
            evals = metrics.counters.get("evals")
            eps = round((evals.value if evals else 0) / makespan, 1)
            if workers == workers_grid[0]:
                base_eps = eps
            cells[f"{requested}-w{workers}"] = {
                "requested_backend": requested,
                "resolved_backend": resolved,
                "workers": workers,
                "requests": n_requests,
                "makespan_s": round(makespan, 3),
                "evals_per_sec": eps,
                "scaling_vs_w1": round(eps / base_eps, 2) if base_eps else None,
            }
    return {
        "workers_grid": list(workers_grid),
        "numba_available": numba_available(),
        "cells": cells,
    }


def run_bench(quick: bool = False, full: bool = False, seed: int = BENCH_SEED) -> dict:
    """All scenarios; asserts the warm-speedup and determinism criteria."""
    if quick:
        repeat_n, distinct, scaling_n = 12, 3, 6
        spec = "arrival:rate=20,n=10;arrival:rate=20,n=10;arrival:rate=60,n=25"
    elif full:
        repeat_n, distinct, scaling_n = 200, 8, 60
        spec = "arrival:rate=40,n=400;arrival:rate=40,n=400;arrival:rate=120,n=1200"
    else:
        repeat_n, distinct, scaling_n = 40, 4, 16
        spec = "arrival:rate=30,n=60;arrival:rate=30,n=60;arrival:rate=90,n=180"

    cold, _ = run_repeat(warm=False, n_requests=repeat_n, distinct_seeds=distinct, seed=seed)
    warm, _ = run_repeat(warm=True, n_requests=repeat_n, distinct_seeds=distinct, seed=seed)
    speedup = round(cold["p50_ms"] / warm["p50_ms"], 2) if warm["p50_ms"] else 0.0
    assert speedup >= 1.5, (
        f"warm cache p50 speedup {speedup}x < 1.5x "
        f"(cold {cold['p50_ms']}ms, warm {warm['p50_ms']}ms)"
    )

    mixed_fair = run_mixed(spec, seed, fair_share=True, warm=True)
    mixed_nofair = run_mixed(spec, seed, fair_share=False, warm=True)
    mixed_cold = run_mixed(spec, seed, fair_share=True, warm=False)
    determinism = run_determinism(seed)
    thread_scaling = run_thread_scaling(seed, scaling_n)

    return {
        "bench": "service",
        "seed": seed,
        "quick": quick,
        "full": full,
        "repeat": {"cold": cold, "warm": warm, "warm_speedup_p50": speedup},
        "mixed": {
            "arrival_spec": spec,
            "fair_share": mixed_fair,
            "fair_share_off": mixed_nofair,
            "cold_cache": mixed_cold,
        },
        "determinism": determinism,
        "thread_scaling": thread_scaling,
    }


def main(argv=None) -> int:
    """Run the harness and write ``benchmarks/results/BENCH_service.json``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--quick", action="store_true", help="CI smoke size (dozens of requests)"
    )
    scale.add_argument(
        "--full", action="store_true", help="thousands of requests (the paper-scale replay)"
    )
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    args = parser.parse_args(argv)
    report = run_bench(quick=args.quick, full=args.full, seed=args.seed)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_service.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out}")
    repeat = report["repeat"]
    mixed = report["mixed"]
    print(
        f"repeat: warm p50 {repeat['warm']['p50_ms']}ms vs cold "
        f"{repeat['cold']['p50_ms']}ms ({repeat['warm_speedup_p50']}x)"
    )
    fair = mixed["fair_share"]
    print(
        f"mixed:  {fair['completed']}/{fair['requests']} completed, "
        f"shed rate {fair['shed_rate']}, p99 {fair['p99_ms']}ms, "
        f"{fair['evals_per_sec']} evals/s sustained"
    )
    print(
        f"determinism: {report['determinism']['events_compared']} events "
        f"byte-identical serial vs concurrent"
    )
    scaling = report["thread_scaling"]
    for key, cell in scaling["cells"].items():
        print(
            f"scaling: {key:<10} [{cell['resolved_backend']}] "
            f"{cell['evals_per_sec']} evals/s "
            f"({cell['scaling_vs_w1']}x vs 1 worker)"
        )
    return 0


# -- pytest-benchmark hook -----------------------------------------------------


def test_warm_service_slice(benchmark):
    """One warm scheduling slice (submit + drain) under the bench timer."""
    metrics = MetricsRegistry()
    scheduler = RunScheduler(metrics=metrics, queue_cap=64, slice_gens=4)
    # Warm the engine pool with one throwaway request first.
    scheduler.submit(PlanRequest(domain="hanoi", size=5, seed=1, budget=8, population=30))
    scheduler.drain()

    def one_request():
        scheduler.submit(PlanRequest(domain="hanoi", size=5, seed=1, budget=8, population=30))
        scheduler.drain()

    benchmark(one_request)


if __name__ == "__main__":
    raise SystemExit(main())
