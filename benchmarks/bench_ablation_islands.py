"""Ablation bench: portfolio vs ring islands vs one population, equal budget.

The trial grid, per-trial seeds and aggregation live in the declarative
``islands-portfolio`` spec (:mod:`repro.exp.islands_portfolio`); like the
``bench_table*`` wrappers this bench runs the sweep in memory, emits the
paper-shaped table, and asserts its shape: every structure appears for
every disk count, fitness stays in range, and whenever both the portfolio
and the ring solve a size, the portfolio's first solution is no slower
than the ring's full run at the median.
"""

from conftest import emit

from repro.exp import run_inline


def test_island_ablation(benchmark, scale, results_dir):
    result = benchmark.pedantic(
        run_inline, args=("islands-portfolio",), kwargs={"scale": scale}, rounds=1, iterations=1
    )
    assert not result.failed
    table = result.table()
    emit(table, results_dir, "ablation_islands")

    structures = {r[0] for r in table.rows}
    assert structures == {"single", "ring-islands", "portfolio"}
    assert all(0.0 <= r[2] <= 1.0 for r in table.rows)

    rows = {(r[0], r[1]): r for r in table.rows}
    for (structure, disks), row in rows.items():
        if structure != "portfolio":
            continue
        ring = rows.get(("ring-islands", disks))
        # Median TTFS comparison only when both structures solved some runs.
        if ring and row[6] != "-" and ring[6] != "-":
            assert row[6] <= ring[6] * 1.5  # portfolio should not be slower
