"""Ablation bench: island-model GA vs one population at equal budget."""

from conftest import emit

from repro.exp.defaults import ABLATION_SEEDS

from repro.analysis import island_study


def test_island_ablation(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        island_study, args=(scale,), kwargs={"seed": ABLATION_SEEDS["islands"]}, rounds=1, iterations=1
    )
    emit(table, results_dir, "ablation_islands")
    assert len(table.rows) == 2
    assert all(0.0 <= f <= 1.0 for f in table.column("Avg Goal Fitness"))
