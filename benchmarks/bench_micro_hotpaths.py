"""Microbenchmarks: the library's hot paths under pytest-benchmark's timer.

Unlike the table benches (one-shot regenerations), these use real repeated
timing: genome decoding (the GA's inner loop), the three crossovers, one
full GA generation, dispatch-payload packing (pickled list vs shared-memory
arena), batched-vs-loop selection and mutation, and a simulator execution.
"""

import pickle

import numpy as np
import pytest

from repro.core import (
    DecodeCache,
    EvaluationContext,
    FitnessFunction,
    FitnessResult,
    GAConfig,
    GARun,
    Individual,
    PopulationBuffer,
    SerialEvaluator,
    TransitionCache,
    decode,
    make_rng,
    mixed_crossover,
    random_crossover,
    state_aware_crossover,
)
from repro.core.fused_decode import FusedDecoder
from repro.core.mutation import sample_uniform_reset, uniform_reset_mutation
from repro.core.selection import tournament_selection, tournament_winner_indices
from repro.core.vector_decode import VectorDecoder
from repro.domains import HanoiDomain, SlidingTileDomain
from repro.grid import GridSimulator, imaging_pipeline, plan_to_activity_graph
from repro.planning.search import goal_gap, greedy_best_first


def test_decode_hanoi7(benchmark):
    domain = HanoiDomain(7)
    rng = make_rng(0)
    genes = rng.random(635)
    cache = DecodeCache(domain)
    decode(genes, domain, domain.initial_state, cache=cache)  # warm the cache
    result = benchmark(decode, genes, domain, domain.initial_state, True, cache)
    assert len(result.operations) > 0


def test_decode_tile4(benchmark):
    domain = SlidingTileDomain(4)
    rng = make_rng(1)
    genes = rng.random(512)
    cache = DecodeCache(domain)
    decode(genes, domain, domain.initial_state, cache=cache)
    result = benchmark(decode, genes, domain, domain.initial_state, True, cache)
    assert len(result.operations) == 512


def test_decode_hanoi7_warm_transitions(benchmark):
    """Same walk as test_decode_hanoi7, but through a warm TransitionCache —
    one int-keyed dict lookup per gene instead of the domain calls."""
    domain = HanoiDomain(7)
    rng = make_rng(0)
    genes = rng.random(635)
    cache = TransitionCache(domain)
    cache.decode(genes, domain.initial_state)  # warm valid + transition tables

    def warm_decode():
        plan, _ = cache.decode(genes, domain.initial_state)
        return plan

    result = benchmark(warm_decode)
    assert len(result.operations) > 0
    assert cache.trans_hits > 0


def test_decode_hanoi7_dirty_prefix(benchmark):
    """Prefix-resumed decode: a child differing from its parent only in the
    last ~5% of genes re-walks just that dirty tail."""
    domain = HanoiDomain(7)
    rng = make_rng(0)
    parent = rng.random(635)
    child = parent.copy()
    dirty_from = 600
    child[dirty_from:] = rng.random(635 - dirty_from)
    cache = TransitionCache(domain)
    parent_plan, _ = cache.decode(parent, domain.initial_state)
    cache.decode(child, domain.initial_state)  # warm the tail's tables too

    def resumed_decode():
        plan, reused = cache.decode(
            child, domain.initial_state,
            prefix_plan=parent_plan, dirty_from=dirty_from,
        )
        return plan, reused

    plan, reused = benchmark(resumed_decode)
    assert reused == dirty_from
    assert plan.state_keys[:dirty_from] == parent_plan.state_keys[:dirty_from]


def _population_decode_setup(make_dec):
    """A 100×635 Hanoi-7 population bound to a warm whole-population decoder."""
    domain = HanoiDomain(7)
    rng = make_rng(4)
    population = [Individual(rng.random(635)) for _ in range(100)]
    buffer = PopulationBuffer.from_individuals(population, keep_plans=False)
    decoder = make_dec(domain.kernel())
    decoder.bind(EvaluationContext(domain, domain.initial_state, FitnessFunction(domain)))
    decoder.decode_rows(buffer.genes, buffer.offsets, buffer.lengths, False)  # warm tables
    return decoder, buffer


def test_population_decode_vector_numpy(benchmark):
    """Whole-population decode through the numpy lock-step walk."""
    decoder, buffer = _population_decode_setup(VectorDecoder)
    out = benchmark(
        decoder.decode_rows, buffer.genes, buffer.offsets, buffer.lengths, False
    )
    assert out[0].shape == (100,)


def test_population_decode_fused(benchmark):
    """Whole-population decode through the fused per-row loop (jit when
    numba is installed, else its pure-Python twin — same algorithm)."""
    def make_dec(kernel):
        decoder = FusedDecoder(kernel)
        decoder.warmup()  # compile outside the bench timer
        return decoder

    decoder, buffer = _population_decode_setup(make_dec)
    out = benchmark(
        decoder.decode_rows, buffer.genes, buffer.offsets, buffer.lengths, False
    )
    assert out[0].shape == (100,)
    benchmark.extra_info["backend"] = decoder.backend_name


@pytest.mark.parametrize("operator", [random_crossover, state_aware_crossover, mixed_crossover])
def test_crossover_throughput(benchmark, operator):
    domain = HanoiDomain(5)
    rng = make_rng(2)
    ctx = EvaluationContext(domain, domain.initial_state, FitnessFunction(domain))
    p1, p2 = Individual.random(100, rng), Individual.random(100, rng)
    SerialEvaluator().evaluate([p1, p2], ctx)
    c1, c2 = benchmark(operator, p1, p2, rng, 155)
    assert len(c1) >= 1


def test_one_ga_generation(benchmark):
    domain = HanoiDomain(5)
    cfg = GAConfig(
        population_size=100, generations=10_000, max_len=155, init_length=31,
        stop_on_goal=False,
    )
    run = GARun(domain, cfg, make_rng(3))
    benchmark(run.step)


def _dispatch_population(n=100, length=635, seed=9):
    """A generation-sized population, as both Individuals and a buffer."""
    rng = make_rng(seed)
    population = [Individual.random(length, rng) for _ in range(n)]
    buffer = PopulationBuffer.from_individuals(population, keep_plans=False)
    return population, buffer


def test_dispatch_payload_pickled_list(benchmark):
    """The PR4 pool transport: pickle a list of Individuals for one batch."""
    population, _ = _dispatch_population()
    payload = benchmark(pickle.dumps, population, pickle.HIGHEST_PROTOCOL)
    benchmark.extra_info["payload_bytes"] = len(payload)


def test_dispatch_payload_shm_pack(benchmark):
    """The zero-copy transport's parent-side work: copy the gene arena plus
    index arrays into a (pre-mapped) shared buffer — what crosses the wire
    is just per-chunk ``(name, start, stop)`` triples."""
    _, buffer = _dispatch_population()
    n, genes_len = buffer.n, buffer.genes.shape[0]
    target = np.empty(2 * n + genes_len, dtype=np.float64)  # stand-in mapping

    def pack():
        target[:n] = buffer.offsets
        target[n : 2 * n] = buffer.lengths
        target[2 * n :] = buffer.genes
        return target

    benchmark(pack)
    benchmark.extra_info["payload_bytes"] = 8 * (2 * n + genes_len)


def test_selection_batched_draw(benchmark):
    """Tournament selection as one (n, k) draw + argmax gather."""
    rng = make_rng(11)
    fitness = rng.random(100)
    idx = benchmark(tournament_winner_indices, fitness, 100, rng, 2)
    assert idx.shape == (100,)


def test_selection_object_loop(benchmark):
    """Tournament selection over Individuals (the object path's shape)."""
    rng = make_rng(11)
    population, _ = _dispatch_population(n=100, length=8, seed=11)
    for ind, total in zip(population, rng.random(100)):
        ind.fitness = FitnessResult(goal=0.0, cost=0.0, total=float(total))
    winners = benchmark(tournament_selection, population, 100, rng, 2)
    assert len(winners) == 100


def test_mutation_batched_scatter(benchmark):
    """Arena-wide mutation: replayed per-row draws, one scatter write."""
    rng = make_rng(12)
    _, buffer = _dispatch_population(n=100, length=635, seed=12)
    arena = buffer.genes.copy()
    arena.setflags(write=True)
    offsets, lengths = buffer.offsets, buffer.lengths

    def scatter():
        idx_parts, val_parts = [], []
        for o, length in zip(offsets, lengths):
            drawn = sample_uniform_reset(int(length), 0.05, rng)
            if drawn is not None:
                idx_parts.append(drawn[0] + int(o))
                val_parts.append(drawn[1])
        if idx_parts:
            arena[np.concatenate(idx_parts)] = np.concatenate(val_parts)

    benchmark(scatter)


def test_mutation_object_loop(benchmark):
    """Per-Individual mutation: one copy + write-back per offspring."""
    rng = make_rng(12)
    population, _ = _dispatch_population(n=100, length=635, seed=12)

    def loop():
        return [uniform_reset_mutation(ind, 0.05, rng) for ind in population]

    children = benchmark(loop)
    assert len(children) == 100


def test_simulator_execution(benchmark):
    onto, domain = imaging_pipeline()
    r = greedy_best_first(domain, goal_gap(domain, scale=100.0), max_expansions=100_000)
    graph = plan_to_activity_graph(domain, r.plan)

    def execute():
        return GridSimulator(onto).execute(graph, domain.initial_state)

    result = benchmark(execute)
    assert result.success
