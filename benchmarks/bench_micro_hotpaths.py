"""Microbenchmarks: the library's hot paths under pytest-benchmark's timer.

Unlike the table benches (one-shot regenerations), these use real repeated
timing: genome decoding (the GA's inner loop), the three crossovers, one
full GA generation, and a simulator execution.
"""

import numpy as np
import pytest

from repro.core import (
    DecodeCache,
    EvaluationContext,
    FitnessFunction,
    GAConfig,
    GARun,
    Individual,
    SerialEvaluator,
    TransitionCache,
    decode,
    make_rng,
    mixed_crossover,
    random_crossover,
    state_aware_crossover,
)
from repro.domains import HanoiDomain, SlidingTileDomain
from repro.grid import GridSimulator, imaging_pipeline, plan_to_activity_graph
from repro.planning.search import goal_gap, greedy_best_first


def test_decode_hanoi7(benchmark):
    domain = HanoiDomain(7)
    rng = make_rng(0)
    genes = rng.random(635)
    cache = DecodeCache(domain)
    decode(genes, domain, domain.initial_state, cache=cache)  # warm the cache
    result = benchmark(decode, genes, domain, domain.initial_state, True, cache)
    assert len(result.operations) > 0


def test_decode_tile4(benchmark):
    domain = SlidingTileDomain(4)
    rng = make_rng(1)
    genes = rng.random(512)
    cache = DecodeCache(domain)
    decode(genes, domain, domain.initial_state, cache=cache)
    result = benchmark(decode, genes, domain, domain.initial_state, True, cache)
    assert len(result.operations) == 512


def test_decode_hanoi7_warm_transitions(benchmark):
    """Same walk as test_decode_hanoi7, but through a warm TransitionCache —
    one int-keyed dict lookup per gene instead of the domain calls."""
    domain = HanoiDomain(7)
    rng = make_rng(0)
    genes = rng.random(635)
    cache = TransitionCache(domain)
    cache.decode(genes, domain.initial_state)  # warm valid + transition tables

    def warm_decode():
        plan, _ = cache.decode(genes, domain.initial_state)
        return plan

    result = benchmark(warm_decode)
    assert len(result.operations) > 0
    assert cache.trans_hits > 0


def test_decode_hanoi7_dirty_prefix(benchmark):
    """Prefix-resumed decode: a child differing from its parent only in the
    last ~5% of genes re-walks just that dirty tail."""
    domain = HanoiDomain(7)
    rng = make_rng(0)
    parent = rng.random(635)
    child = parent.copy()
    dirty_from = 600
    child[dirty_from:] = rng.random(635 - dirty_from)
    cache = TransitionCache(domain)
    parent_plan, _ = cache.decode(parent, domain.initial_state)
    cache.decode(child, domain.initial_state)  # warm the tail's tables too

    def resumed_decode():
        plan, reused = cache.decode(
            child, domain.initial_state,
            prefix_plan=parent_plan, dirty_from=dirty_from,
        )
        return plan, reused

    plan, reused = benchmark(resumed_decode)
    assert reused == dirty_from
    assert plan.state_keys[:dirty_from] == parent_plan.state_keys[:dirty_from]


@pytest.mark.parametrize("operator", [random_crossover, state_aware_crossover, mixed_crossover])
def test_crossover_throughput(benchmark, operator):
    domain = HanoiDomain(5)
    rng = make_rng(2)
    ctx = EvaluationContext(domain, domain.initial_state, FitnessFunction(domain))
    p1, p2 = Individual.random(100, rng), Individual.random(100, rng)
    SerialEvaluator().evaluate([p1, p2], ctx)
    c1, c2 = benchmark(operator, p1, p2, rng, 155)
    assert len(c1) >= 1


def test_one_ga_generation(benchmark):
    domain = HanoiDomain(5)
    cfg = GAConfig(
        population_size=100, generations=10_000, max_len=155, init_length=31,
        stop_on_goal=False,
    )
    run = GARun(domain, cfg, make_rng(3))
    benchmark(run.step)


def test_simulator_execution(benchmark):
    onto, domain = imaging_pipeline()
    r = greedy_best_first(domain, goal_gap(domain, scale=100.0), max_expansions=100_000)
    graph = plan_to_activity_graph(domain, r.plan)

    def execute():
        return GridSimulator(onto).execute(graph, domain.initial_state)

    result = benchmark(execute)
    assert result.success
