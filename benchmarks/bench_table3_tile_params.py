"""Bench: regenerate Table 3 (Sliding-tile puzzle GA parameter settings)."""

from conftest import emit

from repro.analysis import tile_parameter_table
from repro.analysis.experiments import ExperimentScale


def test_table3_tile_parameters(benchmark, results_dir):
    table = benchmark(tile_parameter_table, ExperimentScale.paper())
    emit(table, results_dir, "table3_tile_params")
    values = dict(zip(table.column("Parameter"), table.column("Value")))
    assert values["Crossover type"] == "Random / State-aware / Mixed"
    assert values["Number of phases in multi-phase GA"] == 5
