"""Bench: end-to-end grid workflow — plan, execute, inject failure, replan.

The paper's motivating scenario made measurable: a static plan dies with
its chosen site, while the coordination service replans from the observed
state and still delivers the report.
"""

from conftest import emit

from repro.exp.defaults import GRID_SEED
from repro.analysis import Table
from repro.core import GAConfig, GAPlanner
from repro.grid import (
    CoordinationService,
    GridEvent,
    GridSimulator,
    greedy_grid_planner,
    imaging_pipeline,
    plan_to_activity_graph,
)


def _scenario():
    table = Table(
        "Grid workflow: static script vs replanning coordination",
        ["Strategy", "Event", "Success", "Makespan (s)", "Replans"],
    )

    # Baseline: no failures, greedy plan executed once.
    onto, domain = imaging_pipeline()
    svc = CoordinationService(onto, greedy_grid_planner())
    report = svc.run(domain)
    table.add_row("plan once", "none", report.success, round(report.total_makespan, 1), report.replans)

    # Static script under failure: no replanning allowed.
    onto, domain = imaging_pipeline()
    svc = CoordinationService(onto, greedy_grid_planner(), max_replans=0)
    report = svc.run(domain, events=[GridEvent(2.0, "fail", "hpc-1")])
    table.add_row("static script", "hpc-1 fails @2s", report.success, round(report.total_makespan, 1), report.replans)

    # Replanning coordination under the same failure.
    onto, domain = imaging_pipeline()
    svc = CoordinationService(onto, greedy_grid_planner(), max_replans=3)
    report = svc.run(domain, events=[GridEvent(2.0, "fail", "hpc-1")])
    table.add_row("replanning", "hpc-1 fails @2s", report.success, round(report.total_makespan, 1), report.replans)

    # GA-planned workflow, failure-free, for comparison.
    onto, domain = imaging_pipeline()

    def ga_planner(d):
        cfg = GAConfig(population_size=60, generations=40, max_len=20, init_length=8)
        outcome = GAPlanner(d, cfg, multiphase=3, seed=GRID_SEED).solve()
        return outcome.plan if outcome.solved else None

    svc = CoordinationService(onto, ga_planner)
    report = svc.run(domain)
    table.add_row("GA planner", "none", report.success, round(report.total_makespan, 1), report.replans)
    return table


def test_grid_workflow(benchmark, results_dir):
    table = benchmark.pedantic(_scenario, rounds=1, iterations=1)
    emit(table, results_dir, "grid_workflow")
    rows = {(r[0], r[1]): r for r in table.rows}
    assert rows[("plan once", "none")][2] is True
    assert rows[("static script", "hpc-1 fails @2s")][2] is False
    assert rows[("replanning", "hpc-1 fails @2s")][2] is True
