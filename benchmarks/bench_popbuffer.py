"""Population-buffer ablation bench: what batching and shm dispatch buy.

Runs the same Hanoi-7 GA (same seed, same trajectory — asserted) under the
evaluation variants of DESIGN.md §11:

- ``serial-object``   — the PR4 serial path (``batched=False``,
  list-of-Individual generation step);
- ``serial-batched``  — the structure-of-arrays generation step
  (``batched=True``) on the serial evaluator;
- ``pool-object``     — the PR4 process pool (pickled Individual dispatch);
- ``pool-batched``    — batched generation step, pool dispatch with pickled
  genome chunks (``shm=False``);
- ``pool-batched-shm``— batched + zero-copy shared-memory dispatch (workers
  receive row ranges, return packed fitness arrays in place);
- ``serial-vector``   — whole-population vectorised decode over the domain
  kernel's int tables (``vector_decode=True``, DESIGN.md §12);
- ``pool-vector-shm`` — vectorised decode inside shm pool workers;
- ``serial-fused``    — the fused per-row decode backend (DESIGN.md §16):
  jit-compiled when numba is installed, else the pure-Python twin of the
  compiled loop (slower, but it measures the same algorithm and must
  produce the same trajectory);
- ``pool-fused-shm``  — fused decode inside shm pool workers (resolves to
  the numpy walk when numba is absent — pool workers only take the fused
  loop through the JIT).

The object-path variants pin ``vector_decode=False``, and the vector
variants pin ``decode_backend="numpy"``, so the ablation keeps isolating
one axis at a time (the auto-probes would otherwise silently take the
fastest path available).  Every row records the ``backend`` that actually
ran.

Per variant the run is warmed for a few generations, then measured with a
fresh metrics registry.  Headline numbers: ``evals_per_sec`` (the ``evals``
counter over the ``eval_batch`` timer) and ``generation_step_s`` (the
``selection`` + ``variation`` timers — the breeding work the batched engine
vectorises).  The batched engine replays the object path's RNG draws
exactly, so every variant must produce the identical trajectory *and* the
identical best plan; the bench asserts both.  A second section runs the
4×4 sliding tile — the domain where the object decode engine's GC-bound
caches only reached ≈1.4× (see BENCH_decode.json) — object engine vs
vector decode.  Results go to ``benchmarks/results/BENCH_popbuffer.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_popbuffer.py [--quick]

Also exposes one pytest-benchmark case (a warm batched generation) so the
file participates in the microbench suite.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.exp.defaults import DECODE_BENCH_SEED
from repro.core import GAConfig, GARun, ProcessPoolEvaluator, SerialEvaluator, make_rng
from repro.core.fused_decode import FusedDecoder, numba_available
from repro.domains import HanoiDomain, SlidingTileDomain
from repro.obs import MetricsRegistry

RESULTS_DIR = Path(__file__).parent / "results"

VARIANTS = (
    "serial-object",
    "serial-batched",
    "pool-object",
    "pool-batched",
    "pool-batched-shm",
    "serial-vector",
    "pool-vector-shm",
    "serial-fused",
    "pool-fused-shm",
)

COUNTER_KEYS = (
    "evals_skipped",
    "batched_generations",
    "shm_bytes_published",
    "dispatch_bytes_saved",
    "vector_rows",
    "vector_genes",
    "genes_reused",
    "fused_rows_decoded",
    "jit_compile_ms",
)


def make_config(quick: bool) -> GAConfig:
    """The measured problem: Hanoi-7 at the paper's genome scale."""
    return GAConfig(
        population_size=30 if quick else 100,
        generations=10_000,
        max_len=635,
        init_length=127,
        stop_on_goal=False,
    )


def pool_processes() -> int:
    return max(2, min(4, os.cpu_count() or 2))


def variant_backend(variant: str) -> str:
    """The walk implementation a variant actually measures on this host."""
    if "fused" in variant:
        if numba_available():
            return "fused-jit"
        # Serial runs exercise the pure-Python twin of the compiled loop;
        # pool workers resolve the auto-probe to numpy without numba.
        return "fused-python" if variant.startswith("serial") else "numpy"
    if "vector" in variant:
        return "numpy"
    return "engine"


def build_run(domain, config: GAConfig, seed: int, variant: str) -> GARun:
    vector = "vector" in variant or "fused" in variant
    batched = vector or "batched" in variant
    backend = None
    if "fused" in variant:
        backend = "fused" if numba_available() else None
    elif vector:
        backend = "numpy"  # pin: keep the backend axis out of vector rows
    cfg = config.replace(batched=batched, vector_decode=vector,
                         decode_backend=backend)
    if variant.startswith("pool"):
        evaluator = ProcessPoolEvaluator(
            processes=pool_processes(), shm=variant.endswith("shm")
        )
    else:
        evaluator = SerialEvaluator()
    run = GARun(domain, cfg, make_rng(seed), evaluator=evaluator)
    if variant == "serial-fused" and not numba_available():
        # Force the pure-Python fused loop so the fused algorithm (not its
        # numpy fallback) is what the variant measures without the JIT.
        decoder = FusedDecoder(domain.kernel(), jit=False)
        decoder.warmup()
        evaluator._vdec = decoder
        evaluator._vdec_backend = None
    return run


def measure_variant(domain, config: GAConfig, seed: int, variant: str,
                    warmup: int, measured: int):
    """Run warmup + measured generations; return (row, trajectory, best ops)."""
    run = build_run(domain, config, seed, variant)
    try:
        for _ in range(warmup):
            run.step()
        # Fresh registry for the measured window only: warm-cache steady
        # state is the regime both engines are built for.
        metrics = MetricsRegistry()
        run.metrics = metrics
        run.evaluator.bind_observability(run.tracer, metrics, scope="")
        t0 = time.perf_counter()
        for _ in range(measured):
            run.step()
        wall = time.perf_counter() - t0
    finally:
        run.evaluator.close()
    evals = metrics.counters["evals"].value
    batch_s = metrics.timers["eval_batch"].total
    step_s = metrics.timers["selection"].total + metrics.timers["variation"].total
    row = {
        "variant": variant,
        "backend": variant_backend(variant),
        "evals": evals,
        "eval_batch_s": round(batch_s, 6),
        "generation_step_s": round(step_s, 6),
        "wall_s": round(wall, 6),
        "evals_per_sec": round(evals / batch_s, 1) if batch_s else None,
    }
    for key in COUNTER_KEYS:
        counter = metrics.counters.get(key)
        if counter is not None and counter.value:
            row[key] = counter.value
    trajectory = [
        (g.generation, g.best_total, g.mean_total) for g in run.history.generations
    ]
    best_ops = run.best.decoded.operations if run.best.decoded is not None else None
    return row, trajectory, best_ops


def run_tile4(quick: bool, seed: int) -> dict:
    """Object engine vs vector decode on the 4×4 tile (warm evals/sec).

    This is the domain where the object engine's retained caches are
    GC-bound (DESIGN.md §9's caveat) and only managed ≈1.4× over the naive
    baseline; the vector path decodes against int tables with no tracked
    Python objects, so it is the regime the kernel ABI was built for.
    """
    warmup, measured = (1, 3) if quick else (3, 8)
    config = GAConfig(
        population_size=30 if quick else 100,
        generations=10_000,
        max_len=512,
        init_length=128,
        stop_on_goal=False,
    )
    rows = {}
    trajectories = {}
    for variant in ("serial-batched", "serial-vector", "serial-fused"):
        row, trajectory, _ = measure_variant(
            SlidingTileDomain(4), config, seed, variant, warmup, measured
        )
        rows[variant] = row
        trajectories[variant] = trajectory
        print(f"[tile4]  {variant:<18} {row['evals_per_sec']} evals/s "
              f"({row['backend']})")
    for variant in ("serial-vector", "serial-fused"):
        assert trajectories[variant] == trajectories["serial-batched"], (
            f"tile4 {variant} diverged from the object engine"
        )
    obj = rows["serial-batched"]
    for variant in rows:
        eps = rows[variant]["evals_per_sec"]
        rows[variant]["speedup_vs_baseline"] = (
            round(eps / obj["evals_per_sec"], 2)
            if obj["evals_per_sec"] and eps else None
        )
    return {
        "population_size": config.population_size,
        "max_len": config.max_len,
        "variants": rows,
        "trajectory_identical": True,
        "vector_speedup_vs_engine": rows["serial-vector"]["speedup_vs_baseline"],
        "fused_speedup_vs_engine": rows["serial-fused"]["speedup_vs_baseline"],
    }


def run_bench(quick: bool = False, seed: int = DECODE_BENCH_SEED) -> dict:
    warmup, measured = (1, 3) if quick else (3, 8)
    domain = HanoiDomain(7)
    config = make_config(quick)
    rows = {}
    trajectories = {}
    best_plans = {}
    for variant in VARIANTS:
        row, trajectory, best_ops = measure_variant(
            domain, config, seed, variant, warmup, measured
        )
        rows[variant] = row
        trajectories[variant] = trajectory
        best_plans[variant] = best_ops
        print(f"[hanoi7] {variant:<18} {row['evals_per_sec']} evals/s "
              f"(generation step {row['generation_step_s']}s)")
    # The engine's contract: the ablation changes speed, never results —
    # per-generation statistics *and* the best plan itself.
    for variant in VARIANTS[1:]:
        assert trajectories[variant] == trajectories["serial-object"], (
            f"{variant} diverged from the serial-object trajectory"
        )
        assert best_plans[variant] == best_plans["serial-object"], (
            f"{variant} found a different best plan"
        )
    serial_base = rows["serial-object"]
    pool_base = rows["pool-object"]
    for variant in VARIANTS:
        eps = rows[variant]["evals_per_sec"]
        base = pool_base if variant.startswith("pool") else serial_base
        rows[variant]["speedup_vs_baseline"] = (
            round(eps / base["evals_per_sec"], 2)
            if base["evals_per_sec"] and eps else None
        )
    step_base = serial_base["generation_step_s"]
    step_batched = rows["serial-batched"]["generation_step_s"]
    return {
        "bench": "popbuffer ablation",
        "quick": quick,
        "seed": seed,
        "processes": pool_processes(),
        "warmup_generations": warmup,
        "measured_generations": measured,
        "population_size": config.population_size,
        "max_len": config.max_len,
        "notes": (
            "serial variants isolate the batched generation step (selection "
            "+ variation on the arrays); pool variants isolate dispatch "
            "transport (pickled Individuals vs pickled genome chunks vs "
            "zero-copy shared memory); vector variants swap the object "
            "decode engine for the whole-population kernel-table decode. "
            "Speedups are within-transport: serial-* over serial-object, "
            "pool-* over pool-object. The tile4 section pits the vector "
            "decoder against the object engine on the domain where the "
            "engine's caches are GC-bound."
        ),
        "variants": rows,
        "trajectory_identical": True,
        "generation_step_speedup": (
            round(step_base / step_batched, 2) if step_batched else None
        ),
        "tile4": run_tile4(quick, seed),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small population / few generations (CI smoke)",
    )
    parser.add_argument("--seed", type=int, default=DECODE_BENCH_SEED)
    args = parser.parse_args(argv)
    report = run_bench(quick=args.quick, seed=args.seed)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_popbuffer.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out}")
    shm = report["variants"]["pool-batched-shm"]
    print(
        f"hanoi7: batched+shm pool {shm['evals_per_sec']} evals/s, "
        f"{shm['speedup_vs_baseline']}x over the pickled-Individual pool; "
        f"batched generation step {report['generation_step_speedup']}x "
        f"over the object path"
    )
    vec = report["variants"]["serial-vector"]
    fused = report["variants"]["serial-fused"]
    tile = report["tile4"]
    print(
        f"hanoi7: vector decode {vec['evals_per_sec']} evals/s serial "
        f"({vec['speedup_vs_baseline']}x over serial-object); "
        f"fused [{fused['backend']}] {fused['evals_per_sec']} evals/s; "
        f"tile4: vector {tile['vector_speedup_vs_engine']}x, fused "
        f"{tile['fused_speedup_vs_engine']}x over the object decode engine"
    )
    return 0


# -- pytest-benchmark hook -----------------------------------------------------


def test_batched_warm_generation_hanoi7(benchmark):
    """One warm batched GA generation on Hanoi-7 under the bench timer."""
    domain = HanoiDomain(7)
    cfg = GAConfig(
        population_size=30, generations=10_000, max_len=635, init_length=127,
        stop_on_goal=False,
    )
    run = GARun(domain, cfg, make_rng(5))
    run.step()  # warm the transition tables
    benchmark(run.step)


if __name__ == "__main__":
    sys.exit(main())
