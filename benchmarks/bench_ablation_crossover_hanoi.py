"""Ablation bench: the three crossovers on Towers of Hanoi.

The paper only ran random crossover on Hanoi (Table 2) and compared
crossovers on the tile puzzle (Table 4); this fills in the missing cell.
"""

from conftest import emit

from repro.exp.defaults import ABLATION_SEEDS

from repro.analysis import crossover_on_hanoi


def test_crossover_ablation_hanoi(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        crossover_on_hanoi, args=(scale,), kwargs={"seed": ABLATION_SEEDS["crossover"]}, rounds=1, iterations=1
    )
    emit(table, results_dir, "ablation_crossover_hanoi")
    fits = table.column("Avg Goal Fitness")
    assert all(0.0 <= f <= 1.0 for f in fits)
