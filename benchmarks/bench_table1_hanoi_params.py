"""Bench: regenerate Table 1 (Towers of Hanoi GA parameter settings).

Parameter tables carry no measurement; the bench times table construction
and emits the same rows the paper prints.
"""

from conftest import emit

from repro.analysis import hanoi_parameter_table
from repro.analysis.experiments import ExperimentScale


def test_table1_hanoi_parameters(benchmark, results_dir):
    table = benchmark(hanoi_parameter_table, ExperimentScale.paper())
    emit(table, results_dir, "table1_hanoi_params")
    assert table.column("Parameter")[0] == "Population size"
    assert table.column("Value")[0] == 200
