"""Ablation bench: phase-budget split at constant total generations.

Probes the multi-phase claim directly: does restarting from the best final
state beat spending the same generations in one run?
"""

from conftest import emit

from repro.exp.defaults import ABLATION_SEEDS

from repro.analysis import phase_budget_sweep


def test_phase_budget_ablation(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        phase_budget_sweep, args=(scale,), kwargs={"seed": ABLATION_SEEDS["phases"]}, rounds=1, iterations=1
    )
    emit(table, results_dir, "ablation_phases")
    assert table.column("Phases") == [1, 2, 5, 10]
