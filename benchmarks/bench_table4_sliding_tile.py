"""Bench: regenerate Table 4 (Sliding-tile puzzle, three crossovers).

Paper's reported values (50 runs/cell):

    Crossover    Tiles  AvgGoalFit  AvgSize  #Valid  AvgTime(s)
    state-aware  9      0.995       106.96   48      57.70
    state-aware  16     0.927       865.40   0       415.27
    random       9      0.995       182.52   48      82.35
    random       16     0.935       831.70   1       408.86
    mixed        9      0.995       131.32   48      60.33
    mixed        16     0.928       922.06   1       434.13

Shape asserted: the three crossovers score closely; where both board sizes
run, 9-tile beats 16-tile on fitness and solve rate, and 16-tile solutions
are much longer.

The trial grid, per-trial seeds and aggregation are the declarative
``table4-tile`` spec (:mod:`repro.exp.paper`); this bench is a thin
wrapper that runs the sweep in memory and asserts the shape.
"""

from conftest import emit

from repro.exp import run_inline


def test_table4_sliding_tile(benchmark, scale, results_dir):
    result = benchmark.pedantic(
        run_inline, args=("table4-tile",), kwargs={"scale": scale}, rounds=1, iterations=1
    )
    assert not result.failed
    table = result.table()
    emit(table, results_dir, "table4_sliding_tile")

    by_cell = {(r[0], r[1]): r for r in table.rows}
    fits_9 = [r[2] for r in table.rows if r[1] == 9]
    # The three crossovers land close together on the same board.
    assert max(fits_9) - min(fits_9) < 0.2
    if any(r[1] == 16 for r in table.rows):
        for cx in ("state-aware", "random", "mixed"):
            assert by_cell[(cx, 9)][2] >= by_cell[(cx, 16)][2]  # fitness drops
            assert by_cell[(cx, 9)][4] >= by_cell[(cx, 16)][4]  # solve rate drops
            assert by_cell[(cx, 16)][3] > by_cell[(cx, 9)][3]  # size grows
