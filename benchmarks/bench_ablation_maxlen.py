"""Ablation bench: MaxLen sensitivity on Hanoi.

Quantifies the paper's remark that MaxLen "should be chosen to ensure GA
search quality while not incurring too much computation time": tight caps
(1x optimal) cannot escape the deceptive weighted-disk plateau, generous
caps solve reliably at higher cost.
"""

from conftest import emit

from repro.exp.defaults import ABLATION_SEEDS

from repro.analysis import maxlen_sweep


def test_maxlen_ablation(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        maxlen_sweep, args=(scale,), kwargs={"seed": ABLATION_SEEDS["maxlen"]}, rounds=1, iterations=1
    )
    emit(table, results_dir, "ablation_maxlen")
    rows = table.rows
    # Generous caps must do at least as well as the tightest cap.
    assert rows[-1][2] >= rows[0][2] - 0.05
