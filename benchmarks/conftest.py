"""Shared fixtures for the benchmark suite.

Every bench regenerates one of the paper's tables or figures (or an
ablation) and both prints it and writes it under ``benchmarks/results/``.
Default parameters are the scaled-down regime so the whole suite finishes
in minutes on one core; set ``REPRO_FULL=1`` for paper fidelity (pop 200,
500 generations, 10–50 runs per cell — budget an hour or more).
"""

import os
from pathlib import Path

import pytest

from repro.analysis import ExperimentScale, scale_from_env
from repro.obs import MemoryRecorder, MetricsRegistry, Tracer, observe, planner_summary

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return scale_from_env()


@pytest.fixture(scope="session", autouse=True)
def bench_observability():
    """Attach the in-memory recorder + metrics to the whole bench session.

    Everything the benches run reports through the ambient observability
    pair, so the session can close with headline numbers (evals/sec,
    decode-cache hit rate) alongside the tables.  Set ``REPRO_BENCH_OBS=0``
    to switch it off when measuring the planner's uninstrumented cost.
    """
    if os.environ.get("REPRO_BENCH_OBS", "1") == "0":
        yield None
        return
    recorder = MemoryRecorder(capacity=100_000)
    metrics = MetricsRegistry()
    with observe(tracer=Tracer([recorder]), metrics=metrics):
        yield recorder
    headline = planner_summary(metrics)
    if headline or recorder.total_written:
        print("\n[obs] bench session:", f"{recorder.total_written} events recorded")
        for key, value in headline.items():
            print(f"[obs]   {key} = {value}")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(table, results_dir: Path, name: str) -> None:
    """Print a result table and persist it (text + CSV)."""
    text = table.render()
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
    table.to_csv(results_dir / f"{name}.csv")
