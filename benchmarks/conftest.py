"""Shared fixtures for the benchmark suite.

Every bench regenerates one of the paper's tables or figures (or an
ablation) and both prints it and writes it under ``benchmarks/results/``.
Default parameters are the scaled-down regime so the whole suite finishes
in minutes on one core; set ``REPRO_FULL=1`` for paper fidelity (pop 200,
500 generations, 10–50 runs per cell — budget an hour or more).
"""

import os
from pathlib import Path

import pytest

from repro.analysis import ExperimentScale, scale_from_env

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return scale_from_env()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(table, results_dir: Path, name: str) -> None:
    """Print a result table and persist it (text + CSV)."""
    text = table.render()
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
    table.to_csv(results_dir / f"{name}.csv")
