"""Bench: GA planner vs classical/randomized baselines.

Measures the Section 1 claim that general deterministic search "performs
well only on small problems": BFS explodes on the tile puzzle while
heuristic and evolutionary search stay tractable.
"""

from conftest import emit

from repro.exp.defaults import ABLATION_SEEDS

from repro.analysis import planner_comparison


def test_planner_comparison(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        planner_comparison, args=(scale,), kwargs={"seed": ABLATION_SEEDS["baselines"]}, rounds=1, iterations=1
    )
    emit(table, results_dir, "baselines_planners")
    rows = {(r[0], r[1]): r for r in table.rows}
    # BFS must have expanded far more nodes than A* on the tile puzzle.
    bfs = rows[("tile-3x3", "BFS")]
    astar_row = rows[("tile-3x3", "A*")]
    assert bfs[4] > 10 * astar_row[4]
