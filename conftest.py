"""Root conftest: a fallback per-test timeout shim.

CI installs ``pytest-timeout`` for real watchdog coverage; environments
without it (timeouts matter most for the chaos tests, which deliberately
wedge worker processes) get the SIGALRM-based stand-in below so a hung
test still fails instead of stalling the whole suite.  Living at the repo
root, the shim (and its claim on the ``timeout`` ini key) covers both the
``tests/`` and ``benchmarks/`` trees.
"""

import importlib.util
import signal
import threading

import pytest

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None


if not _HAVE_PYTEST_TIMEOUT:

    def pytest_addoption(parser):
        # Claim the ini key pytest-timeout would own, so `timeout = ...` in
        # pyproject.toml works (and warns about nothing) either way.
        parser.addini("timeout", "per-test timeout in seconds (fallback shim)", default="0")

    def _timeout_for(item) -> float:
        marker = item.get_closest_marker("timeout")
        if marker is not None and marker.args:
            return float(marker.args[0])
        try:
            return float(item.config.getini("timeout") or 0)
        except (TypeError, ValueError):
            return 0.0

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item):
        seconds = _timeout_for(item)
        usable = (
            seconds > 0
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )
        if not usable:
            return (yield)

        def _expired(signum, frame):
            raise TimeoutError(f"test exceeded the {seconds:g}s fallback timeout")

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            return (yield)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
