#!/usr/bin/env python
"""Advanced planning tour: PDDL text domains, plan reuse, and the Pocket Cube.

1. Author a STRIPS domain as PDDL-lite text and solve it three ways.
2. Repair an existing plan after the world changes (plan reuse).
3. Solve a scrambled 2x2x2 Rubik's cube with the GA planner.

Run:  python examples/advanced_planning.py
"""

from repro.core import GAConfig, GAPlanner, make_rng
from repro.domains import PocketCubeDomain, scrambled_state
from repro.planning import Plan, StripsDomainAdapter, load_problem, reuse_plan
from repro.planning.search import breadth_first_search, graphplan

LOGISTICS = """
(define (domain mini-logistics)
  (:predicates (at ?pkg ?loc) (truck-at ?loc) (loaded ?pkg))
  (:action drive
    :parameters (?from ?to)
    :precondition (truck-at ?from)
    :effect (and (truck-at ?to) (not (truck-at ?from))))
  (:action load
    :parameters (?pkg ?loc)
    :precondition (and (truck-at ?loc) (at ?pkg ?loc))
    :effect (and (loaded ?pkg) (not (at ?pkg ?loc))))
  (:action unload
    :parameters (?pkg ?loc)
    :precondition (and (truck-at ?loc) (loaded ?pkg))
    :effect (and (at ?pkg ?loc) (not (loaded ?pkg)))))
"""

DELIVERY = """
(define (problem delivery)
  (:domain mini-logistics)
  (:objects parcel depot shop home)
  (:init (truck-at depot) (at parcel shop))
  (:goal (and (at parcel home) (truck-at depot))))
"""


def pddl_section() -> None:
    print("=== 1. PDDL-lite: author as text, solve three ways ===")
    problem = load_problem(LOGISTICS, DELIVERY)
    adapter = StripsDomainAdapter(problem)

    r = breadth_first_search(adapter)
    print(f"BFS:       {r.plan_length} steps: {' ; '.join(op.name for op in r.plan)}")

    r = graphplan(problem, max_levels=15)
    print(f"Graphplan: {r.plan_length} steps (valid: {Plan(r.plan).solves(problem)})")

    cfg = GAConfig(population_size=80, generations=120, max_len=30, init_length=8)
    outcome = GAPlanner(adapter, cfg, seed=0).solve()
    print(f"GA:        {outcome.plan_length} steps (solved: {outcome.solved})")


def reuse_section() -> None:
    print("\n=== 2. Plan reuse: repair after the world changes ===")
    from repro.domains import HanoiDomain, optimal_hanoi_moves

    domain = HanoiDomain(4)
    old_plan = optimal_hanoi_moves(4)
    # The world moved on: someone made a legal move while we were away.
    mv = domain.valid_operations(domain.initial_state)[-1]
    changed = domain.apply(domain.initial_state, mv)

    def replanner(d, start):
        return breadth_first_search(d, start_state=start).plan

    result = reuse_plan(domain, old_plan, replanner, start_state=changed)
    print(f"old plan: {len(old_plan)} moves; after change: reused {result.reused}, "
          f"repaired {result.repaired}, solved: {result.solved}")


def cube_section() -> None:
    print("\n=== 3. Pocket Cube: GA planning on the 2x2x2 Rubik's cube ===")
    start = scrambled_state(5, make_rng(42))
    domain = PocketCubeDomain(start)
    print(f"scramble depth 5, start fitness {domain.goal_fitness(start):.3f}")
    cfg = GAConfig(population_size=200, generations=80, max_len=30, init_length=10)
    outcome = GAPlanner(domain, cfg, multiphase=3, seed=7).solve()
    print(f"GA: solved={outcome.solved} in {outcome.plan_length} turns "
          f"({outcome.generations} generations)")
    if outcome.solved:
        print("solution:", " ".join(str(op) for op in outcome.plan))


if __name__ == "__main__":
    pddl_section()
    reuse_section()
    cube_section()
