#!/usr/bin/env python
"""Compare the three crossover mechanisms on the 8-puzzle (paper §4.2).

Runs the multi-phase GA with random, state-aware, and mixed crossover on
the reversed 3×3 board and reports, per crossover, whether a valid solution
was found, in which phase, and how long the solution is — a single-run
version of the paper's Tables 4 and 5.

Run:  python examples/sliding_tile_crossovers.py [seed]
"""

import sys

from repro.analysis.experiments import tile_init_length, tile_max_len
from repro.analysis.render import render_tile_board
from repro.core import GAConfig, MultiPhaseConfig, make_rng, run_multiphase
from repro.domains import SlidingTileDomain


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2003
    n = 3
    domain = SlidingTileDomain(n)

    print("Initial board (paper Figure 3a, 3x3 version):")
    print(render_tile_board(domain.initial_state, n))
    print(f"\nManhattan distance to goal: {domain.manhattan(domain.initial_state)}")

    for crossover in ("random", "state-aware", "mixed"):
        phase = GAConfig(
            population_size=200,
            generations=100,
            crossover=crossover,
            max_len=tile_max_len(n),
            init_length=tile_init_length(n),
            stop_on_goal=False,
        )
        mp = MultiPhaseConfig(max_phases=5, phase=phase)
        result = run_multiphase(domain, mp, make_rng(seed))
        print(
            f"\n{crossover:12s} solved={str(result.solved):5s} "
            f"phase={result.solved_in_phase} "
            f"plan_length={result.plan_length} "
            f"goal_fitness={result.goal_fitness:.3f} "
            f"({result.elapsed_seconds:.1f}s)"
        )
        if result.solved:
            final = domain.execute(result.plan)
            assert domain.is_goal(final)

    print("\n(The paper finds state-aware and mixed crossover usually solve in")
    print(" phase 1 while random crossover more often needs phase 2.)")


if __name__ == "__main__":
    main()
