#!/usr/bin/env python
"""Grid workflow planning with dynamic replanning — the paper's motivation.

Builds the imaging pipeline from the paper's footnote (camera frames →
histogram equalisation → filtering → FFT → analysis) over a simulated
three-site heterogeneous grid, then:

1. plans the workflow with the GA planner (placement-aware: costs are
   heterogeneous per machine),
2. compiles the plan into an activity graph and executes it on the
   discrete-event simulator,
3. re-runs with a machine failure injected mid-execution and shows the
   coordination service replanning from the observed state — the thing a
   static script cannot do.

Run:  python examples/grid_workflow.py
"""

from repro.core import GAConfig, GAPlanner
from repro.grid import (
    CoordinationService,
    GridEvent,
    GridSimulator,
    RunProgram,
    greedy_grid_planner,
    imaging_pipeline,
    plan_to_activity_graph,
)


def ga_planner(domain):
    config = GAConfig(
        population_size=100, generations=60, max_len=20, init_length=8
    )
    outcome = GAPlanner(domain, config, multiphase=3, seed=42).solve()
    return outcome.plan if outcome.solved else None


def main() -> None:
    onto, domain = imaging_pipeline()
    print("Goal:", ", ".join(f"{d}@{m}" for d, m in domain.goal))
    print("Machines:", ", ".join(
        f"{m.name}({m.speed:.0f} Mflop/s)" for m in onto.topology.up_machines()
    ))

    # --- 1. plan with the GA ------------------------------------------------
    plan = ga_planner(domain)
    assert plan is not None, "GA failed to find a workflow plan"
    print(f"\nGA plan ({len(plan)} steps):")
    for op in plan:
        print(f"  {op}   (cost {domain.operation_cost(op):.1f}s)")

    # --- 2. compile and simulate ---------------------------------------------
    graph = plan_to_activity_graph(domain, plan)
    result = GridSimulator(onto).execute(graph, domain.initial_state)
    print(f"\nSimulated execution: success={result.success} "
          f"makespan={result.makespan:.1f}s over {len(result.completed)} activities")
    for rec in sorted(result.trace, key=lambda r: r.start):
        print(f"  [{rec.start:7.2f} -> {rec.end:7.2f}] {rec.machine:9s} {rec.description}")

    # --- 3. failure + replanning ----------------------------------------------
    print("\n--- injecting failure: the fastest HPC node dies at t=2s ---")
    onto2, domain2 = imaging_pipeline()
    service = CoordinationService(onto2, greedy_grid_planner(), max_replans=3)
    report = service.run(domain2, events=[GridEvent(time=2.0, kind="fail", machine="hpc-1")])
    print(f"coordination outcome: success={report.success} "
          f"replans={report.replans} makespan={report.total_makespan:.1f}s")
    for i, attempt in enumerate(report.attempts):
        status = "aborted" if attempt.result.aborted_at is not None else "completed"
        machines = sorted({
            op.machine for op in attempt.plan if isinstance(op, RunProgram)
        })
        print(f"  attempt {i + 1}: {len(attempt.plan)} steps on {machines} -> {status}")


if __name__ == "__main__":
    main()
