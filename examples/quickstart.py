#!/usr/bin/env python
"""Quickstart: solve the 5-disk Towers of Hanoi with the multi-phase GA.

This is the paper's flagship experiment in miniature: an indirect
floating-point encoding (every decoded plan is valid by construction),
tournament selection, random one-point crossover, and up to five GA phases
that restart from the best solution's final state.

Run:  python examples/quickstart.py [n_disks]
"""

import sys

from repro.analysis.render import render_hanoi
from repro.core import GAConfig, GAPlanner
from repro.domains import HanoiDomain


def main() -> None:
    n_disks = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    domain = HanoiDomain(n_disks)

    print(f"Towers of Hanoi, {n_disks} disks (optimal: {domain.optimal_length} moves)")
    print("\nInitial state:")
    print(render_hanoi(domain.initial_state, n_disks))

    config = GAConfig(
        population_size=200,
        generations=100,          # per phase
        crossover_rate=0.9,
        mutation_rate=0.01,
        crossover="random",
        max_len=5 * domain.optimal_length,
        init_length=domain.optimal_length,
    )
    planner = GAPlanner(domain, config, multiphase=5, seed=2003)
    outcome = planner.solve()

    print(f"\nsolved:        {outcome.solved}")
    print(f"goal fitness:  {outcome.goal_fitness:.3f}")
    print(f"plan length:   {outcome.plan_length} moves")
    print(f"generations:   {outcome.generations}")
    print(f"wall clock:    {outcome.elapsed_seconds:.1f} s")

    if outcome.solved:
        final = domain.execute(outcome.plan)
        print("\nFinal state (reached by replaying the evolved plan):")
        print(render_hanoi(final, n_disks))
        print("\nFirst ten moves:", ", ".join(str(op) for op in outcome.plan[:10]))


if __name__ == "__main__":
    main()
