#!/usr/bin/env python
"""Blocks World: one STRIPS definition, four planners.

Builds a grounded Blocks World instance from tower descriptions and solves
it with Graphplan, A* over h_max, greedy best-first over h_add (the HSP
recipe), and the GA planner — all from the same problem object.

Run:  python examples/blocks_world.py
"""

from repro.core import GAConfig, GAPlanner
from repro.domains import BlocksWorldDomain, blocks_world_problem
from repro.planning import Plan, StripsDomainAdapter
from repro.planning.search import astar, graphplan, greedy_best_first, make_h_add, make_h_max


def main() -> None:
    initial = [["a", "b", "c"], ["d"]]
    goal = [["d", "c", "b", "a"]]
    problem = blocks_world_problem(initial, goal)
    print(f"blocks: {sorted({b for t in initial for b in t})}")
    print(f"initial towers: {initial}")
    print(f"goal towers:    {goal}")
    print(f"ground operations: {len(problem.operations)}\n")

    r = graphplan(problem, max_levels=30)
    print(f"Graphplan:        solved={r.solved} plan={r.plan_length} levels={r.expanded}")
    assert Plan(r.plan).solves(problem)

    adapter = StripsDomainAdapter(problem)
    r = astar(adapter, heuristic=make_h_max(problem))
    print(f"A* + h_max:       solved={r.solved} plan={r.plan_length} expanded={r.expanded}")

    r = greedy_best_first(adapter, heuristic=make_h_add(problem))
    print(f"Greedy + h_add:   solved={r.solved} plan={r.plan_length} expanded={r.expanded}")

    ga_domain = BlocksWorldDomain(initial, goal)
    cfg = GAConfig(population_size=100, generations=150, max_len=60, init_length=16)
    outcome = GAPlanner(ga_domain, cfg, multiphase=3, seed=5).solve()
    print(f"GA (multi-phase): solved={outcome.solved} plan={outcome.plan_length} "
          f"generations={outcome.generations}")
    if outcome.solved:
        assert Plan(outcome.plan).solves(problem)
        print("\nGA plan:")
        for op in outcome.plan:
            print(f"  {op.name}")


if __name__ == "__main__":
    main()
