#!/usr/bin/env python
"""Heterogeneous task scheduling: the Braun et al. heuristics plus the GA.

This is the prior line of work the paper builds on (refs [4, 19, 20]):
the workflow is given and only the task->machine mapping is optimised.
Generates ETC matrices for the three consistency classes and compares
OLB / MET / MCT / Min-min / Max-min / Sufferage with the GA mapper.

Run:  python examples/scheduling_heuristics.py
"""

from repro.core import make_rng
from repro.scheduling import (
    ETCParams,
    GASchedulerConfig,
    HEURISTICS,
    ga_schedule,
    generate_etc,
    makespan,
)


def main() -> None:
    n_tasks, n_machines = 128, 8
    print(f"{n_tasks} tasks on {n_machines} machines, hi task / hi machine heterogeneity\n")
    header = f"{'consistency':14s}" + "".join(f"{name:>12s}" for name in HEURISTICS) + f"{'GA':>12s}"
    print(header)
    for consistency in ("consistent", "semi", "inconsistent"):
        etc = generate_etc(
            ETCParams(n_tasks=n_tasks, n_machines=n_machines, consistency=consistency),
            make_rng(1),
        )
        spans = [makespan(etc, h(etc)) for h in HEURISTICS.values()]
        ga = ga_schedule(etc, GASchedulerConfig(generations=150), make_rng(2))
        row = f"{consistency:14s}" + "".join(f"{s:12.0f}" for s in spans) + f"{ga.makespan:12.0f}"
        print(row)
    print("\n(Expected shape: OLB worst; Min-min/Sufferage strong; MET collapses")
    print(" on consistent matrices; the GA matches or beats its Min-min seed.)")


if __name__ == "__main__":
    main()
