#!/usr/bin/env python
"""Deterministic chaos run: a grid workflow surviving an injected fault plan.

Same imaging pipeline as ``grid_workflow.py``, but the failures are not
hand-placed: a :class:`repro.faults.FaultInjector` materialises a fault
timeline (machine crashes with restores, load spikes) from a compact spec
string and a seed.  The run is *fully deterministic* — re-running this
script prints byte-identical faults, retries and replans — which is what
makes chaos runs assertable in tests and comparable across optimisation
work.

The same spec grammar also drives worker-level faults: the second half
kills real evaluation workers under the GA planner and shows the resilient
evaluator recovering with correct fitness.

Run:  python examples/chaos_grid_workflow.py
"""

from repro.core import (
    GAConfig,
    GAPlanner,
    ResiliencePolicy,
    ResilientEvaluator,
)
from repro.domains import HanoiDomain
from repro.faults import FaultInjector
from repro.grid import CoordinationService, greedy_grid_planner, imaging_pipeline
from repro.obs import MetricsRegistry, Tracer, observe
from repro.obs.sinks import MemoryRecorder

SPEC = "machine-crash:p=0.35,restore=20;slowdown:factor=3,p=0.3"
SEED = 3


def chaos_workflow() -> None:
    onto, domain = imaging_pipeline()
    plan = FaultInjector(SPEC, seed=SEED).plan(topology=onto.topology)
    print(plan.describe())

    recorder = MemoryRecorder()
    metrics = MetricsRegistry()
    service = CoordinationService(
        onto, greedy_grid_planner(), max_replans=3,
        tracer=Tracer([recorder]), metrics=metrics,
    )
    report = service.run(domain, events=plan.grid_events)

    print(f"\nworkflow outcome: success={report.success} "
          f"rounds={len(report.attempts)} makespan={report.total_makespan:.1f}s")
    for i, attempt in enumerate(report.attempts):
        status = "aborted" if attempt.result.aborted_at is not None else "completed"
        print(f"  round {i + 1}: {len(attempt.plan)} steps -> {status}")

    print("\nfaults vs recovery (deterministic for this spec + seed):")
    print(f"  faults injected: {metrics.counter('faults_injected').value}")
    print(f"  broker retries:  {metrics.counter('retries').value}")
    print(f"  replans:         {metrics.counter('replans').value}")
    replans = [e for e in recorder.events if e.kind == "replan"]
    for ev in replans:
        print(f"  replanned at t={ev.at:.1f}s after {ev.completed} completed activities")


def chaos_evaluation() -> None:
    print("\n--- worker-level chaos: killing evaluation workers mid-GA ---")
    domain = HanoiDomain(4)
    config = GAConfig(population_size=100, generations=80, max_len=25, init_length=15)
    plan = FaultInjector("worker-crash:n=2;eval-timeout:s=30", seed=SEED).plan()
    policy = ResiliencePolicy(eval_timeout_s=plan.eval_timeout_s)

    metrics = MetricsRegistry()
    with observe(metrics=metrics):
        # The factory runs once per phase, so every phase of the multi-phase
        # GA faces its own round of worker kills.
        outcome = GAPlanner(
            domain, config, multiphase=3, seed=SEED,
            evaluator=lambda: ResilientEvaluator(
                policy=policy,
                worker_crashes=plan.worker_crashes,
                worker_hangs=plan.worker_hangs,
                hang_seconds=plan.hang_seconds,
            ),
        ).solve()
    baseline = GAPlanner(domain, config, multiphase=3, seed=SEED, evaluator="serial").solve()

    print(f"  injected worker crashes: {plan.worker_crashes} per phase")
    print(f"  evaluation retries:      {metrics.counter('retries').value}")
    print(f"  degradations:            {metrics.counter('degradations').value}")
    print(f"  solved={outcome.solved} fitness={outcome.goal_fitness:.3f} "
          f"(serial baseline: solved={baseline.solved} "
          f"fitness={baseline.goal_fitness:.3f})")
    assert outcome.goal_fitness == baseline.goal_fitness, "chaos changed the result!"
    print("  identical outcome under faults: the recovery ladder is lossless")


def main() -> None:
    chaos_workflow()
    chaos_evaluation()


if __name__ == "__main__":
    main()
