#!/usr/bin/env python
"""Planner shoot-out: the GA against every classical baseline.

Runs BFS, A*, IDA*, greedy best-first (HSP2-style), hill climbing
(HSP-style), the Stocplan-like random-walk planner, Graphplan (on the
STRIPS encoding) and the multi-phase GA on the same Towers of Hanoi
instance, then on the 8-puzzle.

Run:  python examples/planner_shootout.py
"""

import time

from repro.analysis.experiments import tile_init_length, tile_max_len
from repro.core import GAConfig, GAPlanner, make_rng
from repro.domains import HanoiDomain, SlidingTileDomain, hanoi_strips_problem
from repro.planning import StripsDomainAdapter
from repro.planning.search import (
    astar,
    breadth_first_search,
    goal_gap,
    graphplan,
    greedy_best_first,
    hill_climbing,
    idastar,
    random_walk_planner,
)


def report(name, solved, length, work, seconds):
    print(f"  {name:24s} solved={str(solved):5s} plan={length:4d} work={work:8d} time={seconds:6.2f}s")


def shootout_hanoi(n=4):
    print(f"\n=== Towers of Hanoi, {n} disks (optimal {2**n - 1}) ===")
    d = HanoiDomain(n)
    h = goal_gap(d, scale=float(2 ** (n + 1)))

    r = breadth_first_search(d)
    report("BFS", r.solved, r.plan_length, r.expanded, r.elapsed_seconds)
    r = astar(d, heuristic=h)
    report("A* (goal-gap h)", r.solved, r.plan_length, r.expanded, r.elapsed_seconds)
    r = idastar(d, h)
    report("IDA*", r.solved, r.plan_length, r.expanded, r.elapsed_seconds)
    r = greedy_best_first(d, h)
    report("Greedy BF (HSP2)", r.solved, r.plan_length, r.expanded, r.elapsed_seconds)
    r = hill_climbing(d, h, make_rng(0))
    report("Hill climb (HSP)", r.solved, r.plan_length, r.expanded, r.elapsed_seconds)
    r = random_walk_planner(d, make_rng(1), walk_length=5 * 2**n, max_walks=300)
    report("Random walk (Stocplan)", r.solved, r.plan_length, r.expanded, r.elapsed_seconds)

    strips = hanoi_strips_problem(n) if n <= 3 else None
    if strips is not None:
        r = graphplan(strips, max_levels=20)
        report("Graphplan (STRIPS)", r.solved, r.plan_length, r.generated, r.elapsed_seconds)
    else:
        print("  Graphplan (STRIPS)       skipped (grounded encoding too large)")

    cfg = GAConfig(
        population_size=200, generations=100,
        max_len=5 * (2**n - 1), init_length=2**n - 1,
    )
    t0 = time.perf_counter()
    outcome = GAPlanner(d, cfg, multiphase=5, seed=7).solve()
    report("GA (multi-phase)", outcome.solved, outcome.plan_length,
           outcome.generations * cfg.population_size, time.perf_counter() - t0)


def shootout_tile(n=3):
    print(f"\n=== Sliding-tile puzzle, {n}x{n}, reversed start ===")
    d = SlidingTileDomain(n)
    h = lambda s: float(d.manhattan(s))

    r = breadth_first_search(d)
    report("BFS", r.solved, r.plan_length, r.expanded, r.elapsed_seconds)
    r = astar(d, heuristic=h)
    report("A* (Manhattan)", r.solved, r.plan_length, r.expanded, r.elapsed_seconds)
    r = idastar(d, h)
    report("IDA* (Korf)", r.solved, r.plan_length, r.expanded, r.elapsed_seconds)
    r = greedy_best_first(d, h)
    report("Greedy BF (HSP2)", r.solved, r.plan_length, r.expanded, r.elapsed_seconds)
    r = hill_climbing(d, h, make_rng(2))
    report("Hill climb (HSP)", r.solved, r.plan_length, r.expanded, r.elapsed_seconds)
    r = random_walk_planner(d, make_rng(3), walk_length=200, max_walks=100)
    report("Random walk (Stocplan)", r.solved, r.plan_length, r.expanded, r.elapsed_seconds)

    cfg = GAConfig(
        population_size=200, generations=100,
        max_len=tile_max_len(n), init_length=tile_init_length(n),
    )
    t0 = time.perf_counter()
    outcome = GAPlanner(d, cfg, multiphase=5, seed=9).solve()
    report("GA (multi-phase)", outcome.solved, outcome.plan_length,
           outcome.generations * cfg.population_size, time.perf_counter() - t0)


if __name__ == "__main__":
    shootout_hanoi(4)
    shootout_tile(3)
