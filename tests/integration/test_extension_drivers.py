"""Integration tests for the extension study drivers."""

import pytest

from repro.analysis import fitness_accuracy_study, island_study
from repro.analysis.experiments import ExperimentScale

TINY = ExperimentScale.scaled(
    population_size=24,
    generations_single=25,
    generations_phase=10,
    runs_hanoi=2,
    runs_tile=2,
    hanoi_disks=(3,),
    tile_sizes=(3,),
)


class TestFitnessAccuracyStudy:
    def test_structure(self):
        t = fitness_accuracy_study(TINY, seed=1, n_disks=3, tile_n=3)
        assert len(t.rows) == 4
        domains = t.column("Domain")
        assert domains.count("hanoi-3") == 2 and domains.count("tile-3x3") == 2
        for solved, total in zip(t.column("Solved Runs"), t.column("Total Runs")):
            assert 0 <= solved <= total == 2

    def test_reproducible(self):
        a = fitness_accuracy_study(TINY, seed=2, n_disks=3).rows
        b = fitness_accuracy_study(TINY, seed=2, n_disks=3).rows
        assert a == b


class TestIslandStudy:
    def test_structure(self):
        t = island_study(TINY, seed=3, n_disks=3, n_islands=3)
        assert len(t.rows) == 2
        assert t.rows[0][0] == "1 population"
        assert "islands" in t.rows[1][0]
        assert all(0.0 <= f <= 1.0 for f in t.column("Avg Goal Fitness"))

    def test_total_runs_consistent(self):
        t = island_study(TINY, seed=4, n_disks=3)
        assert t.column("Total Runs") == [2, 2]
