"""Integration tests: whole-stack flows across packages."""

import numpy as np
import pytest

from repro.analysis import crossover_on_hanoi, maxlen_sweep, phase_budget_sweep, planner_comparison, seeding_study, weight_sweep
from repro.analysis.experiments import ExperimentScale
from repro.core import GAConfig, GAPlanner, MultiPhaseConfig, make_rng, run_multiphase
from repro.domains import HanoiDomain, SlidingTileDomain, optimal_hanoi_moves
from repro.grid import (
    CoordinationService,
    GridEvent,
    GridSimulator,
    greedy_grid_planner,
    imaging_pipeline,
    plan_to_activity_graph,
)
from repro.planning.search import astar, breadth_first_search

TINY = ExperimentScale.scaled(
    population_size=24,
    generations_single=30,
    generations_phase=10,
    runs_hanoi=2,
    runs_tile=2,
    hanoi_disks=(3,),
    tile_sizes=(3,),
)


class TestGAvsOptimal:
    def test_ga_plan_is_valid_but_longer_than_optimal(self):
        """GA finds valid plans; classical search certifies the optimum."""
        domain = HanoiDomain(4)
        cfg = GAConfig(population_size=80, generations=150, max_len=75, init_length=15)
        outcome = GAPlanner(domain, cfg, multiphase=5, seed=0).solve()
        assert outcome.solved
        optimal = breadth_first_search(domain)
        assert outcome.plan_length >= optimal.plan_length == 15

    def test_ga_tile_plan_executes_to_goal(self):
        domain = SlidingTileDomain(3)
        cfg = GAConfig(population_size=100, generations=60, max_len=162, init_length=28)
        outcome = GAPlanner(domain, cfg, multiphase=5, seed=1).solve()
        assert outcome.solved
        assert domain.is_goal(domain.execute(outcome.plan))


class TestHanoiShapeAtSmallScale:
    def test_multiphase_dominates_single_phase(self):
        """Table 2's headline shape on a 5-disk instance with equal budget."""
        domain = HanoiDomain(5)
        single = GAConfig(
            population_size=60, generations=100, max_len=155, init_length=31,
            stop_on_goal=False,
        )
        results_single, results_multi = [], []
        for seed in range(3):
            from repro.core import run_ga

            r = run_ga(domain, single, make_rng(seed))
            results_single.append(r.best.fitness.goal)
            mp = MultiPhaseConfig(
                max_phases=5, phase=single.replace(generations=20)
            )
            m = run_multiphase(domain, mp, make_rng(100 + seed))
            results_multi.append(m.goal_fitness)
        assert np.mean(results_multi) >= np.mean(results_single) - 0.15

    def test_harder_instances_score_lower(self):
        """Goal fitness decreases as the problem scales (Table 2/4 shape)."""
        scores = []
        for n in (3, 6):
            domain = HanoiDomain(n)
            cfg = GAConfig(
                population_size=40, generations=40,
                max_len=5 * (2**n - 1), init_length=2**n - 1,
            )
            outcome = GAPlanner(domain, cfg, seed=5).solve()
            scores.append(outcome.goal_fitness)
        assert scores[0] > scores[1]


class TestGridEndToEnd:
    def test_ga_plan_compiles_and_simulates(self):
        onto, domain = imaging_pipeline()
        cfg = GAConfig(population_size=60, generations=50, max_len=20, init_length=8)
        outcome = GAPlanner(domain, cfg, multiphase=3, seed=2).solve()
        assert outcome.solved
        graph = plan_to_activity_graph(domain, outcome.plan)
        result = GridSimulator(onto).execute(graph, domain.initial_state)
        assert result.success
        assert domain.is_goal(result.placements)

    def test_overload_makes_replanning_win(self):
        """The paper's motivating scenario: the chosen site degrades; a
        coordination service that replans still completes."""
        onto, domain = imaging_pipeline()
        svc = CoordinationService(onto, greedy_grid_planner(), max_replans=2)
        events = [
            GridEvent(time=1.0, kind="fail", machine="hpc-1"),
            GridEvent(time=1.0, kind="fail", machine="hpc-2"),
        ]
        report = svc.run(domain, events=events)
        assert report.success
        assert report.replans >= 1


class TestAblationDrivers:
    def test_crossover_on_hanoi_runs(self):
        t = crossover_on_hanoi(TINY, seed=1, n_disks=3)
        assert len(t.rows) == 3

    def test_maxlen_sweep_runs(self):
        t = maxlen_sweep(TINY, seed=1, n_disks=3, multipliers=(1, 5))
        assert t.column("MaxLen") == [7, 35]

    def test_weight_sweep_runs(self):
        t = weight_sweep(TINY, seed=1, n_disks=3, goal_weights=(0.9, 1.0))
        assert len(t.rows) == 2

    def test_phase_budget_sweep_runs(self):
        t = phase_budget_sweep(TINY, seed=1, n_disks=3, splits=(1, 2))
        assert t.column("Phases") == [1, 2]

    def test_seeding_study_runs(self):
        # Note: seeding is not guaranteed to help (the paper's [22] reports
        # that retaining randomness matters), so only structure is asserted.
        t = seeding_study(TINY, seed=1, n_disks=3, seed_fractions=(0.0, 0.25))
        assert t.column("Seed Fraction") == [0.0, 0.25]
        assert all(0 <= s <= 2 for s in t.column("Solved Runs"))

    def test_planner_comparison_runs(self):
        t = planner_comparison(TINY, seed=1, hanoi_disks=3, tile_n=3)
        assert len(t.rows) == 12  # 6 planners × 2 domains
        solved = dict(zip(zip(t.column("Domain"), t.column("Planner")), t.column("Solved")))
        assert solved[("hanoi-3", "BFS")] and solved[("hanoi-3", "A*")]
