"""Tests for the single-phase GA engine."""

import numpy as np
import pytest

from repro.core import GAConfig, GARun, Individual, initial_population, make_rng, run_ga
from repro.domains import HanoiDomain


class TestInitialPopulation:
    def test_size_and_length(self, rng):
        cfg = GAConfig(population_size=10, max_len=50, init_length=20)
        pop = initial_population(cfg, rng)
        assert len(pop) == 10
        assert all(len(ind) == 20 for ind in pop)

    def test_length_range_sampled(self, rng):
        cfg = GAConfig(population_size=50, max_len=50, init_length=(5, 15))
        pop = initial_population(cfg, rng)
        lengths = {len(ind) for ind in pop}
        assert lengths <= set(range(5, 16))
        assert len(lengths) > 3  # actually varied

    def test_seeds_included_first(self, rng):
        cfg = GAConfig(population_size=5, max_len=50, init_length=10)
        seed = Individual(genes=np.full(7, 0.5))
        pop = initial_population(cfg, rng, seeds=[seed])
        assert len(pop) == 5
        assert np.array_equal(pop[0].genes, seed.genes)

    def test_too_many_seeds_rejected(self, rng):
        cfg = GAConfig(population_size=2, max_len=50, init_length=10)
        seeds = [Individual(genes=rng.random(3)) for _ in range(3)]
        with pytest.raises(ValueError):
            initial_population(cfg, rng, seeds=seeds)


class TestGARun:
    def test_max_len_required(self, hanoi3, rng):
        with pytest.raises(ValueError, match="max_len"):
            GARun(hanoi3, GAConfig(), rng)

    def test_step_returns_stats_and_advances(self, hanoi3, rng, small_config):
        run = GARun(hanoi3, small_config, rng)
        s0 = run.step()
        assert s0.generation == 0
        assert run.generation == 1
        s1 = run.step()
        assert s1.generation == 1

    def test_population_size_constant(self, hanoi3, rng, small_config):
        run = GARun(hanoi3, small_config, rng)
        for _ in range(5):
            run.step()
            assert len(run.population) == small_config.population_size

    def test_solves_hanoi3(self, hanoi3):
        cfg = GAConfig(
            population_size=50, generations=100, max_len=35, init_length=7
        )
        result = run_ga(hanoi3, cfg, make_rng(0))
        assert result.solved
        assert result.best.decoded.goal_reached
        # Verify the plan actually works by replaying it.
        final = hanoi3.execute(result.best.decoded.operations)
        assert hanoi3.is_goal(final)

    def test_stop_on_goal_halts_early(self, hanoi3):
        cfg = GAConfig(
            population_size=50, generations=500, max_len=35, init_length=7, stop_on_goal=True
        )
        result = run_ga(hanoi3, cfg, make_rng(1))
        assert result.solved
        assert result.generations_run < 500
        assert result.solved_at_generation is not None

    def test_no_stop_on_goal_runs_full_budget(self, hanoi3):
        cfg = GAConfig(
            population_size=30, generations=10, max_len=35, init_length=7, stop_on_goal=False
        )
        result = run_ga(hanoi3, cfg, make_rng(2))
        assert result.generations_run == 10
        assert len(result.history) == 10

    def test_best_tracked_across_generations(self, hanoi3, rng, small_config):
        run = GARun(hanoi3, small_config, rng)
        bests = []
        for _ in range(10):
            run.step()
            bests.append(run.best.sort_key())
        # best-so-far is monotone non-decreasing
        assert bests == sorted(bests)

    def test_reproducible_with_same_seed(self, hanoi3, small_config):
        r1 = run_ga(hanoi3, small_config, make_rng(99))
        r2 = run_ga(hanoi3, small_config, make_rng(99))
        assert np.array_equal(r1.best.genes, r2.best.genes)
        assert r1.best.fitness.total == r2.best.fitness.total

    def test_lengths_never_exceed_max_len(self, hanoi3, rng):
        cfg = GAConfig(population_size=20, generations=15, max_len=20, init_length=20)
        run = GARun(hanoi3, cfg, rng)
        for _ in range(15):
            run.step()
            assert all(len(ind) <= 20 for ind in run.population)

    def test_custom_start_state(self, hanoi3, rng, small_config):
        # Start one move from the goal: trivially solvable in generation 0.
        near_goal = ((1,), (3, 2), ())
        result = run_ga(hanoi3, small_config, rng, start_state=near_goal)
        assert result.solved
        assert result.solved_at_generation == 0

    def test_elitism_keeps_best(self, hanoi3, rng):
        cfg = GAConfig(
            population_size=20, generations=10, max_len=35, init_length=7,
            elitism=2, stop_on_goal=False,
        )
        run = GARun(hanoi3, cfg, rng)
        prev_best = None
        for _ in range(10):
            stats = run.step()
            if prev_best is not None:
                assert stats.best_total >= prev_best - 1e-12
            prev_best = stats.best_total

    def test_on_generation_callback(self, hanoi3, rng, small_config):
        seen = []
        GARun(hanoi3, small_config.replace(generations=5, stop_on_goal=False), rng).run(
            on_generation=seen.append
        )
        assert [s.generation for s in seen] == [0, 1, 2, 3, 4]

    def test_all_crossovers_run(self, hanoi3):
        for kind in ("random", "state-aware", "mixed"):
            cfg = GAConfig(
                population_size=20, generations=5, max_len=35, init_length=7,
                crossover=kind, stop_on_goal=False,
            )
            result = run_ga(hanoi3, cfg, make_rng(5))
            assert result.generations_run == 5
