"""Fused-vs-numpy decode bit-identity and backend selection (DESIGN.md §16).

The fused backend's exactness contract says :class:`FusedDecoder` and the
numpy :class:`VectorDecoder` produce bit-identical fitness, cost, traces
and plans.  This suite drives both through the vector path's corners —
dead ends, empty genomes, dirty-prefix resumes at row boundaries,
evicted-transition fallback, non-unit operation costs — comparing them
row for row.  ``FusedDecoder(jit=False)`` forces the pure-Python twin of
the compiled loop, so every identity test runs without numba installed;
the jit leg re-runs a representative slice under numba and is skipped
when it is absent.
"""

import numpy as np
import pytest

from repro.core import GAConfig, Individual, make_rng, run_ga
from repro.core.fitness import FitnessFunction
from repro.core.fused_decode import (
    FusedDecoder,
    make_decoder,
    numba_available,
    resolve_backend,
)
from repro.core.parallel import EvaluationContext, SerialEvaluator
from repro.core.popbuffer import PopulationBuffer
from repro.core.vector_decode import VectorDecoder
from repro.domains import HanoiDomain, SlidingTileDomain
from repro.domains.kernels import TableKernel, cached_kernel
from repro.protocol import PlanningDomain

requires_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed (the [speed] extra)"
)


class TrapChainDomain(PlanningDomain):
    """A line 0 → 1 → … → n where every inner state can also jump into a
    dead end (state -1, zero valid operations).  Same shape as the vector
    decoder's edge-case domain: small enough for :class:`TableKernel`,
    rich enough to stall rows mid-walk.
    """

    name = "trap-chain-fused"

    def __init__(self, n: int = 6, max_states: int = 200_000) -> None:
        self.n = n
        self._max_states = max_states

    @property
    def initial_state(self) -> int:
        return 0

    def valid_operations(self, state: int):
        if state == -1 or state >= self.n:
            return ()
        return ("step", "trap")

    def apply(self, state: int, op: str) -> int:
        return state + 1 if op == "step" else -1

    def goal_fitness(self, state: int) -> float:
        if state == self.n:
            return 1.0
        if state == -1:
            return 0.0
        return state / (2.0 * self.n)

    def kernel(self):
        return cached_kernel(
            self, lambda d: TableKernel(d, max_states=self._max_states)
        )


class WeightedTrapDomain(TrapChainDomain):
    """Trap chain with non-unit operation costs (exercises ``op_cost``)."""

    name = "weighted-trap-fused"

    def __init__(self, n: int = 6, max_states: int = 200_000) -> None:
        super().__init__(n, max_states)

    def valid_operations(self, state: int):
        if state == -1 or state >= self.n:
            return ()
        return ("step", "trap", "skip")

    def apply(self, state: int, op: str) -> int:
        if op == "trap":
            return -1
        return state + (2 if op == "skip" else 1)

    def operation_cost(self, op: str) -> float:
        return {"step": 1.0, "trap": 0.25, "skip": 2.5}[op]

    def goal_fitness(self, state: int) -> float:
        if state >= self.n:
            return 1.0
        if state == -1:
            return 0.0
        return state / (2.0 * self.n)


def _context(domain, truncate=True):
    return EvaluationContext(
        domain=domain,
        start_state=domain.initial_state,
        fitness=FitnessFunction(domain, 0.7, 0.3),
        truncate_at_goal=truncate,
        memoize=True,
        vector=True,
    )


def _buffer_of(genes_rows):
    inds = [Individual(np.asarray(g, dtype=np.float64)) for g in genes_rows]
    return PopulationBuffer.from_individuals(inds, keep_plans=True)


def _pair(domain_factory, jit=False):
    """A (fused, numpy) decoder pair over *independent* kernel instances.

    Independent instances matter: interning order may differ between the
    backends (the fused stall-resume protocol fills transitions in bulk),
    and sharing one kernel would let the first decode warm the second.
    """
    fused_domain, numpy_domain = domain_factory(), domain_factory()
    fused = FusedDecoder(fused_domain.kernel(), jit=jit)
    fused.warmup()
    return fused, VectorDecoder(numpy_domain.kernel())


def _decode(dec, domain, rows, hints=None, truncate=True):
    dec.bind(_context(domain, truncate=truncate))
    arena = np.concatenate(
        [np.asarray(r, dtype=np.float64) for r in rows]
        or [np.empty(0, dtype=np.float64)]
    )
    lengths = np.asarray([len(r) for r in rows], dtype=np.int64)
    offsets = np.zeros(len(rows), dtype=np.int64)
    if len(rows) > 1:
        offsets[1:] = np.cumsum(lengths[:-1])
    return dec.decode_rows(
        arena, offsets, lengths, keep_plans=True, hints=hints
    )


def assert_outputs_identical(got, want):
    """Bitwise identity of decode_rows outputs (arrays and plans)."""
    for g, w in zip(got[:5], want[:5]):
        np.testing.assert_array_equal(g, w)
    for pg, pw in zip(got[5], want[5]):
        assert (pg is None) == (pw is None)
        if pg is not None:
            assert pg.operations == pw.operations
            assert pg.state_keys == pw.state_keys
            assert pg.match_keys == pw.match_keys
            assert pg.used_genes == pw.used_genes
            assert pg.cost == pw.cost
            assert pg.goal_reached == pw.goal_reached


def _random_rows(rng, count, max_len):
    return [rng.random(int(rng.integers(1, max_len + 1))) for _ in range(count)]


class TestBitIdentity:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: HanoiDomain(4),
            lambda: SlidingTileDomain(3),
            lambda: TrapChainDomain(6),
            lambda: WeightedTrapDomain(6),
        ],
        ids=["hanoi4", "tile3", "trap-chain", "weighted-costs"],
    )
    def test_random_populations_match(self, factory):
        fused, ref = _pair(factory)
        rows = _random_rows(make_rng(5), 48, 14)
        out = _decode(fused, factory(), rows)
        want = _decode(ref, factory(), rows)
        assert_outputs_identical(out, want)
        assert fused.fused_rows == 48

    def test_no_truncate_walks_full_rows(self):
        factory = lambda: TrapChainDomain(3)  # noqa: E731 - local fixture
        fused, ref = _pair(factory)
        rows = _random_rows(make_rng(9), 24, 10)
        out = _decode(fused, factory(), rows, truncate=False)
        want = _decode(ref, factory(), rows, truncate=False)
        assert_outputs_identical(out, want)

    def test_dead_end_rows_stop_identically(self):
        fused, ref = _pair(lambda: TrapChainDomain(5))
        rows = _random_rows(make_rng(0), 32, 8)
        out = _decode(fused, TrapChainDomain(5), rows)
        want = _decode(ref, TrapChainDomain(5), rows)
        assert_outputs_identical(out, want)
        assert any(
            p.used_genes < len(r) and not p.goal_reached
            for p, r in zip(out[5], rows)
        )

    def test_empty_genome_rows(self):
        # Zero-length rows between walked neighbours: fitness of the
        # untouched start state, no genes consumed, on both backends.
        fused, ref = _pair(lambda: HanoiDomain(3))
        rows = [[0.4, 0.9], [], [0.1], []]
        out = _decode(fused, HanoiDomain(3), rows)
        want = _decode(ref, HanoiDomain(3), rows)
        assert_outputs_identical(out, want)
        assert out[4][1] == 0 and out[4][3] == 0

    def test_zero_rows_batch(self):
        fused, _ = _pair(lambda: HanoiDomain(3))
        out = _decode(fused, HanoiDomain(3), [])
        assert out[0].shape == (0,) and out[5] == []


class TestPrefixResumeBoundaries:
    @pytest.mark.parametrize("dirty", [1, 4, 8])
    def test_resume_matches_numpy_resume(self, dirty):
        # Decode once, then resume with a dirty suffix on both backends;
        # the fused walk must reuse exactly as many genes as numpy does.
        fused, ref = _pair(lambda: HanoiDomain(3))
        genes = make_rng(7).random(8)
        out_parent = _decode(fused, HanoiDomain(3), [genes])
        want_parent = _decode(ref, HanoiDomain(3), [genes])
        assert_outputs_identical(out_parent, want_parent)
        hints = [(out_parent[5][0], dirty)]
        out = _decode(fused, HanoiDomain(3), [genes], hints=hints)
        want = _decode(ref, HanoiDomain(3), [genes], hints=[(want_parent[5][0], dirty)])
        assert_outputs_identical(out, want)
        assert fused.genes_reused == ref.genes_reused

    def test_resume_through_stalled_transitions(self):
        # The parent walk fills the lazy tables; a fresh fused kernel must
        # stall, bulk-fill, and still match the resumed numpy decode.
        genes = np.full(12, 0.2, dtype=np.float64)  # always "step"
        fused, ref = _pair(lambda: TrapChainDomain(40))
        out_parent = _decode(fused, TrapChainDomain(40), [genes])
        want_parent = _decode(ref, TrapChainDomain(40), [genes])
        hints_f = [(out_parent[5][0], 6)]
        hints_n = [(want_parent[5][0], 6)]
        out = _decode(fused, TrapChainDomain(40), [genes], hints=hints_f)
        want = _decode(ref, TrapChainDomain(40), [genes], hints=hints_n)
        assert_outputs_identical(out, want)


class TestEvictedTransitionFallback:
    def test_reset_falls_back_identically(self):
        # A tiny max_states overflows the kernel; rebinding resets it and
        # hints pointing at evicted ids fall back to a full decode —
        # identically on both backends.
        genes = np.full(12, 0.2, dtype=np.float64)
        fused, ref = _pair(lambda: TrapChainDomain(40, max_states=8))
        out_parent = _decode(fused, TrapChainDomain(40, max_states=8), [genes])
        want_parent = _decode(ref, TrapChainDomain(40, max_states=8), [genes])
        assert fused.kernel.overflowed and ref.kernel.overflowed
        out = _decode(
            fused,
            TrapChainDomain(40, max_states=8),
            [genes],
            hints=[(out_parent[5][0], 6)],
        )
        want = _decode(
            ref,
            TrapChainDomain(40, max_states=8),
            [genes],
            hints=[(want_parent[5][0], 6)],
        )
        assert fused.kernel_resets == 1 and ref.kernel_resets == 1
        assert fused.prefix_fallbacks == ref.prefix_fallbacks == 1
        assert_outputs_identical(out, want)


class TestEvaluatorAndGA:
    def test_serial_evaluator_buffers_match(self):
        # Preload one evaluator with a fused-python decoder (same kernel
        # object, so the rebuild check keeps it) and compare buffers.
        rows = _random_rows(make_rng(3), 30, 12)
        buf_f, buf_n = _buffer_of(rows), _buffer_of(rows)
        dom_n, dom_f = WeightedTrapDomain(6), WeightedTrapDomain(6)
        SerialEvaluator().evaluate_buffer(buf_n, _context(dom_n))
        ev = SerialEvaluator()
        ev._vdec = FusedDecoder(dom_f.kernel(), jit=False)
        ev._vdec_backend = None
        ev.evaluate_buffer(buf_f, _context(dom_f))
        assert ev._vdec.backend_name == "fused-python"  # decoder kept
        assert ev._vdec.fused_rows > 0
        np.testing.assert_array_equal(buf_f.total, buf_n.total)
        np.testing.assert_array_equal(buf_f.cost, buf_n.cost)
        np.testing.assert_array_equal(buf_f.goal_reached, buf_n.goal_reached)

    def test_full_ga_trajectory_identical_across_backends(self):
        config = GAConfig(
            population_size=12,
            generations=6,
            max_len=16,
            init_length=6,
            vector_decode=True,
        )
        base = run_ga(
            TrapChainDomain(6), config.replace(decode_backend="numpy"), make_rng(4)
        )
        auto = run_ga(
            TrapChainDomain(6), config.replace(decode_backend=None), make_rng(4)
        )
        np.testing.assert_array_equal(base.best.genes, auto.best.genes)
        assert base.best.fitness.total == auto.best.fitness.total
        assert base.history.generations == auto.history.generations


class TestBackendSelection:
    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="decode_backend"):
            resolve_backend("cuda")

    def test_resolve_numpy(self):
        assert resolve_backend("numpy") == "numpy"

    def test_resolve_auto_matches_probe(self):
        expected = "fused" if numba_available() else "numpy"
        assert resolve_backend(None) == expected

    @pytest.mark.skipif(numba_available(), reason="numba installed")
    def test_fused_without_numba_raises(self):
        with pytest.raises(RuntimeError, match="repro\\[speed\\]"):
            resolve_backend("fused")

    @pytest.mark.skipif(numba_available(), reason="numba installed")
    def test_make_decoder_falls_back_to_numpy(self):
        dec = make_decoder(HanoiDomain(3).kernel())
        assert type(dec) is VectorDecoder and dec.backend_name == "numpy"

    @pytest.mark.skipif(numba_available(), reason="numba installed")
    def test_jit_true_without_numba_raises(self):
        with pytest.raises(RuntimeError, match="numba"):
            FusedDecoder(HanoiDomain(3).kernel(), jit=True)

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="decode_backend"):
            GAConfig(max_len=16, init_length=8, decode_backend="cuda")

    def test_config_rejects_backend_without_vector(self):
        with pytest.raises(ValueError, match="vector_decode"):
            GAConfig(
                max_len=16,
                init_length=8,
                vector_decode=False,
                decode_backend="numpy",
            )

    def test_python_fallback_reports_its_name(self):
        dec = FusedDecoder(HanoiDomain(3).kernel(), jit=False)
        assert dec.backend_name == "fused-python"
        assert dec.warmup() == 0.0  # Python loop needs no compile

    def test_counters_include_fused_metrics(self):
        fused, _ = _pair(lambda: HanoiDomain(3))
        _decode(fused, HanoiDomain(3), [[0.5, 0.2]])
        flat = fused.counters()
        assert flat["fused_rows_decoded"] == 1
        assert "jit_compile_ms" in flat


@requires_numba
class TestJitLeg:
    """Representative re-run of the identity suite under the real JIT."""

    def test_jit_matches_numpy_on_all_domains(self):
        for factory in (
            lambda: HanoiDomain(4),
            lambda: TrapChainDomain(6),
            lambda: WeightedTrapDomain(6),
        ):
            fused, ref = _pair(factory, jit=True)
            assert fused.backend_name == "fused-jit"
            rows = _random_rows(make_rng(8), 40, 12)
            out = _decode(fused, factory(), rows)
            want = _decode(ref, factory(), rows)
            assert_outputs_identical(out, want)

    def test_warmup_records_compile_time(self):
        dec = FusedDecoder(HanoiDomain(3).kernel(), jit=True)
        dec.warmup()
        assert dec.jit_compile_ms >= 0.0
        before = dec.jit_compile_ms
        assert dec.warmup() == 0.0  # idempotent
        assert dec.jit_compile_ms == before

    def test_make_decoder_prefers_jit(self):
        dec = make_decoder(HanoiDomain(3).kernel())
        assert isinstance(dec, FusedDecoder) and dec.jit

    def test_resolve_fused_succeeds(self):
        assert resolve_backend("fused") == "fused"
