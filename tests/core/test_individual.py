"""Tests for Individual: immutability, validation, ranking."""

import numpy as np
import pytest

from repro.core import Individual
from repro.core.fitness import FitnessResult


def _fit(goal, total):
    return FitnessResult(goal=goal, cost=0.5, total=total, goal_reached=goal >= 1.0)


class TestConstruction:
    def test_genes_are_read_only(self):
        ind = Individual(genes=np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            ind.genes[0] = 0.9

    def test_source_array_is_copied(self):
        src = np.array([0.1, 0.2])
        ind = Individual(genes=src)
        src[0] = 0.9
        assert ind.genes[0] == pytest.approx(0.1)

    def test_empty_genome_rejected(self):
        with pytest.raises(ValueError):
            Individual(genes=np.array([]))

    def test_out_of_range_genes_rejected(self):
        with pytest.raises(ValueError):
            Individual(genes=np.array([0.5, 1.5]))
        with pytest.raises(ValueError):
            Individual(genes=np.array([-0.1]))

    def test_multidimensional_rejected(self):
        with pytest.raises(ValueError):
            Individual(genes=np.zeros((2, 2)))

    def test_len(self):
        assert len(Individual(genes=np.array([0.1, 0.2, 0.3]))) == 3

    def test_random_factory(self, rng):
        ind = Individual.random(10, rng)
        assert len(ind) == 10
        assert not ind.is_evaluated

    def test_random_zero_length_rejected(self, rng):
        with pytest.raises(ValueError):
            Individual.random(0, rng)


class TestEvaluationState:
    def test_unevaluated_fitness_access_raises(self):
        ind = Individual(genes=np.array([0.5]))
        with pytest.raises(ValueError):
            _ = ind.total_fitness
        with pytest.raises(ValueError):
            _ = ind.goal_fitness
        with pytest.raises(ValueError):
            ind.sort_key()

    def test_copy_shares_evaluation(self):
        ind = Individual(genes=np.array([0.5]))
        ind.fitness = _fit(0.8, 0.75)
        clone = ind.copy()
        assert clone.fitness is ind.fitness
        assert clone.genes is ind.genes

    def test_with_genes_resets_evaluation(self):
        ind = Individual(genes=np.array([0.5]))
        ind.fitness = _fit(0.8, 0.75)
        other = ind.with_genes(np.array([0.1, 0.2]))
        assert not other.is_evaluated
        assert len(other) == 2


class TestSortKey:
    def test_goal_fitness_dominates(self):
        a = Individual(genes=np.array([0.5]))
        b = Individual(genes=np.array([0.5]))
        a.fitness = _fit(goal=0.9, total=0.5)
        b.fitness = _fit(goal=0.8, total=0.99)
        assert a.sort_key() > b.sort_key()

    def test_total_breaks_ties(self):
        a = Individual(genes=np.array([0.5]))
        b = Individual(genes=np.array([0.5]))
        a.fitness = _fit(goal=0.9, total=0.7)
        b.fitness = _fit(goal=0.9, total=0.6)
        assert a.sort_key() > b.sort_key()
