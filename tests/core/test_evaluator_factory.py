"""Tests for evaluator-factory wiring in the multi-phase and island drivers."""

import pytest

from repro.core import (
    GAConfig,
    IslandConfig,
    MultiPhaseConfig,
    SerialEvaluator,
    make_rng,
    run_islands,
    run_multiphase,
)
from repro.domains import HanoiDomain


class CountingEvaluator(SerialEvaluator):
    """Serial evaluator that records construction and closure."""

    instances = 0
    closed = 0

    def __init__(self):
        super().__init__()
        CountingEvaluator.instances += 1

    def close(self):
        CountingEvaluator.closed += 1


@pytest.fixture(autouse=True)
def _reset_counters():
    CountingEvaluator.instances = 0
    CountingEvaluator.closed = 0


class TestMultiphaseEvaluatorFactory:
    def test_one_evaluator_per_phase_and_all_closed(self, hanoi3):
        phase = GAConfig(
            population_size=10, generations=3, max_len=35, init_length=7,
            stop_on_goal=False,
        )
        mp = MultiPhaseConfig(max_phases=3, phase=phase)
        result = run_multiphase(
            hanoi3, mp, make_rng(0), evaluator_factory=CountingEvaluator
        )
        assert CountingEvaluator.instances == result.n_phases
        assert CountingEvaluator.closed == result.n_phases

    def test_evaluators_closed_even_on_error(self, hanoi3):
        class Exploding(CountingEvaluator):
            def evaluate(self, population, context):
                raise RuntimeError("boom")

        phase = GAConfig(
            population_size=10, generations=2, max_len=35, init_length=7,
            stop_on_goal=False,
        )
        mp = MultiPhaseConfig(max_phases=2, phase=phase)
        with pytest.raises(RuntimeError, match="boom"):
            run_multiphase(hanoi3, mp, make_rng(1), evaluator_factory=Exploding)
        assert CountingEvaluator.closed == CountingEvaluator.instances


class TestIslandEvaluatorFactory:
    def test_one_evaluator_per_island(self, hanoi3):
        cfg = IslandConfig(
            n_islands=3,
            migration_interval=2,
            migration_size=1,
            island=GAConfig(
                population_size=8, generations=4, max_len=35, init_length=7,
                stop_on_goal=False,
            ),
        )
        run_islands(hanoi3, cfg, make_rng(2), evaluator_factory=CountingEvaluator)
        assert CountingEvaluator.instances == 3
        assert CountingEvaluator.closed == 3

    def test_evaluators_closed_on_early_stop(self, hanoi3):
        # stop_on_goal lets the run exit before the generation budget; the
        # per-island evaluators must still be released.
        cfg = IslandConfig(
            n_islands=2,
            migration_interval=5,
            migration_size=1,
            island=GAConfig(
                population_size=40, generations=60, max_len=35, init_length=7,
                stop_on_goal=True,
            ),
        )
        run_islands(hanoi3, cfg, make_rng(3), evaluator_factory=CountingEvaluator)
        assert CountingEvaluator.instances == 2
        assert CountingEvaluator.closed == 2

    def test_evaluators_closed_even_on_error(self, hanoi3):
        class Exploding(CountingEvaluator):
            def evaluate(self, population, context):
                raise RuntimeError("boom")

        cfg = IslandConfig(
            n_islands=2,
            migration_interval=2,
            migration_size=1,
            island=GAConfig(
                population_size=8, generations=2, max_len=35, init_length=7,
                stop_on_goal=False,
            ),
        )
        with pytest.raises(RuntimeError, match="boom"):
            run_islands(hanoi3, cfg, make_rng(4), evaluator_factory=Exploding)
        assert CountingEvaluator.closed == CountingEvaluator.instances
