"""Vector-vs-object decode equivalence: trajectories must be bit-identical.

``GAConfig.vector_decode`` switches evaluation between the whole-population
numpy decoder (:mod:`repro.core.vector_decode`, gathering transitions from
the domain kernel's int tables) and the object decode engine.  The kernel
ABI's exactness contract (DESIGN.md §12) makes the switch *unobservable* in
results: same seed → same per-generation statistics, same best genome,
fitness, decoded plan and match keys, to the last bit — serial or process
pool, shared-memory dispatch on or off, single-phase, multi-phase or
islands.  Hypothesis drives random configurations across all three
crossovers and all three kernel-backed domains.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GAConfig,
    IslandConfig,
    MultiPhaseConfig,
    make_rng,
    run_ga,
    run_islands,
    run_multiphase,
)
from repro.core.parallel import ProcessPoolEvaluator, SerialEvaluator
from repro.domains import HanoiDomain, PocketCubeDomain, SlidingTileDomain
from repro.domains.pocket_cube import scrambled_state


def run_pair(domain, config, seed, on_evaluator=None, off_evaluator=None):
    """Run the same GA with vector decode on and off; return both results."""
    on = run_ga(
        domain, config.replace(vector_decode=True), make_rng(seed), evaluator=on_evaluator
    )
    off = run_ga(
        domain, config.replace(vector_decode=False), make_rng(seed), evaluator=off_evaluator
    )
    return on, off


def assert_results_identical(on, off):
    assert on.history.generations == off.history.generations  # exact dataclass ==
    assert on.generations_run == off.generations_run
    assert on.solved_at_generation == off.solved_at_generation
    np.testing.assert_array_equal(on.best.genes, off.best.genes)
    assert on.best.fitness.total == off.best.fitness.total
    assert on.best.fitness.goal == off.best.fitness.goal
    assert on.best.decoded.operations == off.best.decoded.operations
    assert on.best.decoded.state_keys == off.best.decoded.state_keys
    assert on.best.decoded.match_keys == off.best.decoded.match_keys
    assert on.best.decoded.cost == off.best.decoded.cost
    assert on.best.decoded.goal_reached == off.best.decoded.goal_reached


configs = st.fixed_dictionaries(
    {
        "population_size": st.integers(min_value=6, max_value=14),
        "generations": st.integers(min_value=2, max_value=5),
        "crossover": st.sampled_from(["random", "state-aware", "mixed"]),
        "crossover_rate": st.floats(min_value=0.0, max_value=1.0),
        "mutation_rate": st.floats(min_value=0.0, max_value=0.3),
        "elitism": st.integers(min_value=0, max_value=2),
        "truncate_at_goal": st.booleans(),
        "seed": st.integers(min_value=0, max_value=2**31),
    }
)


class TestVectorTrajectoryEquivalence:
    @given(configs)
    @settings(max_examples=12, deadline=None)
    def test_hanoi_random_configs(self, params):
        seed = params.pop("seed")
        config = GAConfig(max_len=32, init_length=(4, 16), **params)
        on, off = run_pair(HanoiDomain(3), config, seed)
        assert_results_identical(on, off)

    @given(configs)
    @settings(max_examples=8, deadline=None)
    def test_tile_random_configs(self, params):
        # The tile kernel interns lazily and uses a non-trivial decode_key
        # (blank position), exercising dirty-prefix resume and match keys.
        seed = params.pop("seed")
        config = GAConfig(max_len=40, init_length=(6, 20), **params)
        on, off = run_pair(SlidingTileDomain(3), config, seed)
        assert_results_identical(on, off)

    @given(configs)
    @settings(max_examples=6, deadline=None)
    def test_cube_random_configs(self, params):
        seed = params.pop("seed")
        config = GAConfig(max_len=24, init_length=(4, 12), **params)
        domain = PocketCubeDomain(scrambled_state(6, make_rng(seed % 97)))
        on, off = run_pair(domain, config, seed)
        assert_results_identical(on, off)

    @pytest.mark.parametrize("crossover", ["random", "state-aware", "mixed"])
    def test_longer_run_per_crossover(self, crossover):
        config = GAConfig(
            population_size=20,
            generations=15,
            max_len=64,
            init_length=16,
            crossover=crossover,
        )
        on, off = run_pair(HanoiDomain(4), config, 424242)
        assert_results_identical(on, off)

    def test_auto_probe_equals_explicit_on(self):
        # vector_decode=None (the default) must auto-enable where a kernel
        # exists and produce the same trajectory as an explicit True.
        config = GAConfig(population_size=12, generations=5, max_len=32, init_length=10)
        auto = run_ga(HanoiDomain(3), config, make_rng(8))
        explicit = run_ga(
            HanoiDomain(3), config.replace(vector_decode=True), make_rng(8)
        )
        assert_results_identical(auto, explicit)


class TestVectorProcessPoolEquivalence:
    @pytest.mark.parametrize("crossover", ["random", "mixed"])
    @pytest.mark.parametrize("shm", [True, False])
    def test_pool_vector_matches_object_serial(self, crossover, shm):
        domain = HanoiDomain(3)
        config = GAConfig(
            population_size=16,
            generations=6,
            max_len=32,
            init_length=10,
            crossover=crossover,
        )
        with ProcessPoolEvaluator(processes=2, shm=shm) as pool:
            on, off = run_pair(
                domain, config, 7, on_evaluator=pool, off_evaluator=SerialEvaluator()
            )
        assert_results_identical(on, off)


class TestVectorMultiphaseEquivalence:
    def test_multiphase_vector_on_off(self):
        domain = HanoiDomain(4)
        base = GAConfig(population_size=16, generations=8, max_len=40, init_length=12)
        on = run_multiphase(
            domain,
            MultiPhaseConfig(phase=base.replace(vector_decode=True), max_phases=3),
            make_rng(99),
        )
        off = run_multiphase(
            domain,
            MultiPhaseConfig(phase=base.replace(vector_decode=False), max_phases=3),
            make_rng(99),
        )
        assert on.plan == off.plan
        assert on.goal_fitness == off.goal_fitness
        assert on.solved == off.solved
        assert on.total_generations == off.total_generations
        for a, b in zip(on.phases, off.phases):
            assert a.result.history.generations == b.result.history.generations


class TestVectorIslandsEquivalence:
    def test_islands_vector_on_off(self):
        domain = SlidingTileDomain(3)
        base = GAConfig(
            population_size=10, generations=12, max_len=40, init_length=10,
            crossover="state-aware",
        )
        def island_config(vector):
            return IslandConfig(
                n_islands=3,
                migration_interval=4,
                migration_size=2,
                island=base.replace(vector_decode=vector),
            )

        on = run_islands(domain, island_config(True), make_rng(5))
        off = run_islands(domain, island_config(False), make_rng(5))
        assert on.best.sort_key() == off.best.sort_key()
        np.testing.assert_array_equal(on.best.genes, off.best.genes)
        assert on.solved_at_generation == off.solved_at_generation
        assert on.migrations == off.migrations
        for ha, hb in zip(on.histories, off.histories):
            assert ha.generations == hb.generations
