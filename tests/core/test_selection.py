"""Tests for selection schemes."""

import numpy as np
import pytest

from repro.core import Individual, make_rng, rank_selection, roulette_selection, tournament_selection
from repro.core.fitness import FitnessResult


def _pop(fitnesses):
    pop = []
    for f in fitnesses:
        ind = Individual(genes=np.array([min(f, 0.999)]))
        ind.fitness = FitnessResult(goal=f, cost=0.5, total=f)
        pop.append(ind)
    return pop


class TestTournament:
    def test_returns_requested_count(self, rng):
        pop = _pop([0.1, 0.5, 0.9])
        out = tournament_selection(pop, 10, rng)
        assert len(out) == 10

    def test_selected_are_copies(self, rng):
        pop = _pop([0.1, 0.9])
        out = tournament_selection(pop, 4, rng)
        for sel in out:
            assert all(sel is not orig for orig in pop)

    def test_pressure_toward_fitter(self):
        rng = make_rng(0)
        pop = _pop([0.1] * 50 + [0.9] * 50)
        out = tournament_selection(pop, 1000, rng, tournament_size=2)
        high = sum(1 for ind in out if ind.total_fitness > 0.5)
        # With k=2 tournaments over a 50/50 split, the fitter half wins 75%.
        assert 0.70 < high / 1000 < 0.80

    def test_tournament_of_one_is_uniform(self):
        rng = make_rng(1)
        pop = _pop([0.1] * 50 + [0.9] * 50)
        out = tournament_selection(pop, 2000, rng, tournament_size=1)
        high = sum(1 for ind in out if ind.total_fitness > 0.5)
        assert 0.45 < high / 2000 < 0.55

    def test_larger_tournament_more_pressure(self):
        rng = make_rng(2)
        pop = _pop([0.1] * 50 + [0.9] * 50)
        k2 = sum(i.total_fitness > 0.5 for i in tournament_selection(pop, 2000, rng, 2))
        k5 = sum(i.total_fitness > 0.5 for i in tournament_selection(pop, 2000, rng, 5))
        assert k5 > k2

    def test_empty_population_rejected(self, rng):
        with pytest.raises(ValueError):
            tournament_selection([], 1, rng)

    def test_unevaluated_population_rejected(self, rng):
        pop = [Individual(genes=np.array([0.5]))]
        with pytest.raises(ValueError):
            tournament_selection(pop, 1, rng)

    def test_bad_tournament_size(self, rng):
        with pytest.raises(ValueError):
            tournament_selection(_pop([0.5]), 1, rng, tournament_size=0)


class TestRoulette:
    def test_returns_requested_count(self, rng):
        out = roulette_selection(_pop([0.2, 0.8]), 6, rng)
        assert len(out) == 6

    def test_pressure_proportional(self):
        rng = make_rng(3)
        pop = _pop([0.1, 0.9])
        out = roulette_selection(pop, 5000, rng)
        high = sum(1 for ind in out if ind.total_fitness > 0.5)
        assert 0.85 < high / 5000 < 0.95  # expectation 0.9

    def test_all_zero_fitness_uniform(self):
        rng = make_rng(4)
        out = roulette_selection(_pop([0.0, 0.0]), 100, rng)
        assert len(out) == 100


class TestRank:
    def test_returns_requested_count(self, rng):
        out = rank_selection(_pop([0.2, 0.5, 0.8]), 7, rng)
        assert len(out) == 7

    def test_best_rank_selected_most(self):
        rng = make_rng(5)
        pop = _pop([0.1, 0.5, 0.9])
        out = rank_selection(pop, 3000, rng)
        counts = {0.1: 0, 0.5: 0, 0.9: 0}
        for ind in out:
            counts[round(ind.total_fitness, 1)] += 1
        assert counts[0.9] > counts[0.5] > counts[0.1]
