"""Tests for the indirect encoding (decode / encode round trips)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_rng
from repro.core.encoding import DecodeCache, decode, encode_operations, gene_to_index
from repro.domains import HanoiDomain, SlidingTileDomain, optimal_hanoi_moves


class TestGeneToIndex:
    def test_four_way_split_matches_paper_example(self):
        # Paper: four valid operations; [0, .25) -> 0, [.25, .5) -> 1, ...
        assert gene_to_index(0.0, 4) == 0
        assert gene_to_index(0.2499, 4) == 0
        assert gene_to_index(0.25, 4) == 1
        assert gene_to_index(0.5, 4) == 2
        assert gene_to_index(0.75, 4) == 3
        assert gene_to_index(0.999, 4) == 3

    def test_gene_of_exactly_one_clamps(self):
        assert gene_to_index(1.0, 4) == 3

    def test_single_operation(self):
        assert gene_to_index(0.0, 1) == 0
        assert gene_to_index(0.99, 1) == 0

    def test_no_valid_ops_raises(self):
        with pytest.raises(ValueError):
            gene_to_index(0.5, 0)


class TestDecode:
    def test_every_decoded_op_is_valid(self, hanoi3, rng):
        genes = rng.random(20)
        d = decode(genes, hanoi3, hanoi3.initial_state, truncate_at_goal=False)
        state = hanoi3.initial_state
        for op in d.operations:
            assert op in list(hanoi3.valid_operations(state))
            state = hanoi3.apply(state, op)
        assert state == d.final_state

    def test_state_keys_align_with_operations(self, hanoi3, rng):
        genes = rng.random(10)
        d = decode(genes, hanoi3, hanoi3.initial_state, truncate_at_goal=False)
        assert len(d.state_keys) == len(d.operations) + 1
        assert d.state_keys[0] == hanoi3.state_key(hanoi3.initial_state)
        assert d.state_keys[-1] == hanoi3.state_key(d.final_state)

    def test_full_genome_used_without_truncation(self, hanoi3, rng):
        genes = rng.random(10)
        d = decode(genes, hanoi3, hanoi3.initial_state, truncate_at_goal=False)
        assert d.used_genes == 10  # Hanoi has no dead ends

    def test_truncates_at_goal(self, hanoi3):
        optimal = optimal_hanoi_moves(3)
        genes = encode_operations(hanoi3, hanoi3.initial_state, optimal)
        padded = np.concatenate([genes, np.full(10, 0.5)])
        d = decode(padded, hanoi3, hanoi3.initial_state, truncate_at_goal=True)
        assert d.goal_reached
        assert d.used_genes == 7
        assert len(d.operations) == 7

    def test_no_truncation_may_pass_through_goal(self, hanoi3):
        optimal = optimal_hanoi_moves(3)
        genes = encode_operations(hanoi3, hanoi3.initial_state, optimal)
        padded = np.concatenate([genes, np.full(10, 0.5)])
        d = decode(padded, hanoi3, hanoi3.initial_state, truncate_at_goal=False)
        assert d.used_genes == 17

    def test_start_at_goal_decodes_empty(self, hanoi3):
        goal = ((), (3, 2, 1), ())
        d = decode(np.array([0.1, 0.2]), hanoi3, goal, truncate_at_goal=True)
        assert d.goal_reached
        assert len(d.operations) == 0
        assert d.cost == 0.0

    def test_cost_accumulates_unit_costs(self, hanoi3, rng):
        d = decode(rng.random(12), hanoi3, hanoi3.initial_state, truncate_at_goal=False)
        assert d.cost == pytest.approx(len(d.operations))

    def test_decode_is_deterministic(self, tile3, rng):
        genes = rng.random(30)
        a = decode(genes, tile3, tile3.initial_state)
        b = decode(genes, tile3, tile3.initial_state)
        assert a.operations == b.operations
        assert a.final_state == b.final_state

    def test_decode_with_shared_cache_matches_uncached(self, tile3, rng):
        cache = DecodeCache(tile3)
        genes = rng.random(25)
        a = decode(genes, tile3, tile3.initial_state, cache=cache)
        b = decode(genes, tile3, tile3.initial_state)
        assert a.operations == b.operations
        assert cache.hits + cache.misses > 0


class TestDecodeCache:
    def test_hit_after_miss(self, hanoi3):
        cache = DecodeCache(hanoi3)
        s = hanoi3.initial_state
        k = hanoi3.state_key(s)
        first = cache.valid_operations(s, k)
        second = cache.valid_operations(s, k)
        assert first == second
        assert cache.misses == 1 and cache.hits == 1

    def test_bounded_reset(self, hanoi3):
        cache = DecodeCache(hanoi3, max_entries=1)
        s = hanoi3.initial_state
        cache.valid_operations(s, "k1")
        cache.valid_operations(s, "k2")  # triggers wholesale reset
        assert cache.misses == 2

    def test_clear(self, hanoi3):
        cache = DecodeCache(hanoi3)
        s = hanoi3.initial_state
        cache.valid_operations(s, hanoi3.state_key(s))
        cache.clear()
        cache.valid_operations(s, hanoi3.state_key(s))
        assert cache.misses == 2


class TestEncodeOperations:
    def test_round_trip_optimal_hanoi(self, hanoi5):
        optimal = optimal_hanoi_moves(5)
        genes = encode_operations(hanoi5, hanoi5.initial_state, optimal)
        d = decode(genes, hanoi5, hanoi5.initial_state, truncate_at_goal=False)
        assert list(d.operations) == optimal
        assert d.goal_reached

    def test_round_trip_with_jitter(self, hanoi5, rng):
        optimal = optimal_hanoi_moves(5)
        genes = encode_operations(hanoi5, hanoi5.initial_state, optimal, rng=rng)
        d = decode(genes, hanoi5, hanoi5.initial_state, truncate_at_goal=False)
        assert list(d.operations) == optimal

    def test_jittered_encodings_differ(self, hanoi5, rng):
        optimal = optimal_hanoi_moves(5)
        a = encode_operations(hanoi5, hanoi5.initial_state, optimal, rng=rng)
        b = encode_operations(hanoi5, hanoi5.initial_state, optimal, rng=rng)
        assert a.tolist() != b.tolist()

    def test_invalid_sequence_rejected(self, hanoi3):
        from repro.domains import HanoiMove

        bad = [HanoiMove(1, 0)]  # stake B is empty in the initial state
        with pytest.raises(ValueError, match="not valid"):
            encode_operations(hanoi3, hanoi3.initial_state, bad)

    def test_empty_sequence(self, hanoi3):
        genes = encode_operations(hanoi3, hanoi3.initial_state, [])
        assert genes.shape == (0,)


def _random_walk_ops(domain, rng, length):
    """A random valid operation sequence of up to *length* steps."""
    state = domain.initial_state
    ops = []
    for _ in range(length):
        valid = list(domain.valid_operations(state))
        if not valid:
            break
        op = valid[int(rng.integers(0, len(valid)))]
        ops.append(op)
        state = domain.apply(state, op)
    return ops


class TestRoundTripProperties:
    """encode_operations ↔ decode round trips under jitter and at bin edges.

    The encoding's invertibility claim: any valid operation sequence has a
    genome decoding back to it, and every gene anywhere inside its bin —
    including the exact left edge and the largest float below the right
    edge — selects the same operation.
    """

    @given(
        st.sampled_from(["hanoi3", "hanoi5", "tile3"]),
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=1, max_value=25),
    )
    @settings(max_examples=40, deadline=None)
    def test_jittered_round_trip(self, domain_name, seed, length):
        domain = {
            "hanoi3": HanoiDomain(3),
            "hanoi5": HanoiDomain(5),
            "tile3": SlidingTileDomain(3),
        }[domain_name]
        rng = make_rng(seed)
        ops = _random_walk_ops(domain, rng, length)
        genes = encode_operations(domain, domain.initial_state, ops, rng=rng)
        d = decode(genes, domain, domain.initial_state, truncate_at_goal=False)
        assert list(d.operations) == ops
        assert d.used_genes == len(ops)

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=1, max_value=20),
        st.sampled_from(["left", "right", "centre"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_bin_boundary_round_trip(self, seed, length, edge):
        # Genes pinned to bin boundaries: the exact left edge idx/k and the
        # largest representable float below the right edge (idx+1)/k.
        domain = HanoiDomain(4)
        rng = make_rng(seed)
        ops = _random_walk_ops(domain, rng, length)
        state = domain.initial_state
        genes = []
        for op in ops:
            valid = list(domain.valid_operations(state))
            idx = valid.index(op)
            k = len(valid)
            if edge == "left":
                # Smallest representable float that still truncates into bin
                # idx (idx/k itself can round a hair below the edge).
                gene = idx / k
                while int(gene * k) < idx:
                    gene = np.nextafter(gene, 1.0)
            elif edge == "right":
                # Largest representable float below the right edge.
                gene = np.nextafter((idx + 1) / k, 0.0)
                while int(gene * k) > idx:
                    gene = np.nextafter(gene, 0.0)
            else:
                gene = (idx + 0.5) / k
            assert gene_to_index(gene, k) == idx
            genes.append(gene)
            state = domain.apply(state, op)
        d = decode(
            np.asarray(genes, dtype=np.float64),
            domain,
            domain.initial_state,
            truncate_at_goal=False,
        )
        assert list(d.operations) == ops
