"""Edge cases of the vectorised decoder (DESIGN.md §12).

The trajectory-level bit-identity suites live in
``test_vector_equivalence.py``; this file drives :class:`VectorDecoder`
directly into its corners — empty rows, dead-end (zero-valid-op) states,
dirty-prefix resume exactly at row boundaries, evicted-transition fallback
after a kernel reset — and checks the configuration guard rails.
"""

import numpy as np
import pytest

from repro.core import GAConfig, Individual, make_rng, run_ga
from repro.core.fitness import FitnessFunction
from repro.core.parallel import EvaluationContext, SerialEvaluator
from repro.core.popbuffer import PopulationBuffer
from repro.core.vector_decode import VectorDecoder, vector_supported
from repro.domains import GridNavigationDomain, HanoiDomain
from repro.domains.kernels import TableKernel, cached_kernel
from repro.protocol import PlanningDomain


class TrapChainDomain(PlanningDomain):
    """A line 0 → 1 → … → n with a trap: every inner state can also jump
    to a dead end (state -1, no valid operations).  Small enough for the
    generic :class:`TableKernel`, rich enough to exercise dead-end rows.
    """

    name = "trap-chain"

    def __init__(self, n: int = 6, max_states: int = 200_000) -> None:
        self.n = n
        self._max_states = max_states

    @property
    def initial_state(self) -> int:
        return 0

    def valid_operations(self, state: int):
        if state == -1 or state >= self.n:
            return ()
        return ("step", "trap")

    def apply(self, state: int, op: str) -> int:
        return state + 1 if op == "step" else -1

    def goal_fitness(self, state: int) -> float:
        if state == self.n:
            return 1.0
        if state == -1:
            return 0.0
        return state / (2.0 * self.n)

    def kernel(self):
        return cached_kernel(
            self, lambda d: TableKernel(d, max_states=self._max_states)
        )


def _context(domain, vector=True, truncate=True):
    return EvaluationContext(
        domain=domain,
        start_state=domain.initial_state,
        fitness=FitnessFunction(domain, 0.7, 0.3),
        truncate_at_goal=truncate,
        memoize=True,
        vector=vector,
    )


def _buffer_of(genes_rows):
    inds = [Individual(np.asarray(g, dtype=np.float64)) for g in genes_rows]
    return PopulationBuffer.from_individuals(inds, keep_plans=True)


def _decoder(domain):
    kernel = domain.kernel()
    assert kernel is not None
    return VectorDecoder(kernel)


def assert_buffers_identical(a, b):
    np.testing.assert_array_equal(a.total, b.total)
    np.testing.assert_array_equal(a.goal, b.goal)
    np.testing.assert_array_equal(a.cost, b.cost)
    np.testing.assert_array_equal(a.goal_reached, b.goal_reached)
    for pa, pb in zip(a.plans, b.plans):
        assert (pa is None) == (pb is None)
        if pa is not None:
            assert pa.operations == pb.operations
            assert pa.state_keys == pb.state_keys
            assert pa.match_keys == pb.match_keys
            assert pa.used_genes == pb.used_genes
            assert pa.cost == pb.cost
            assert pa.goal_reached == pb.goal_reached


class TestDeadEnds:
    def test_dead_end_rows_match_object_path(self):
        domain = TrapChainDomain(5)
        rng = make_rng(0)
        rows = [rng.random(8) for _ in range(32)]  # many rows walk into the trap
        vec, obj = _buffer_of(rows), _buffer_of(rows)
        SerialEvaluator().evaluate_buffer(vec, _context(domain, vector=True))
        SerialEvaluator().evaluate_buffer(obj, _context(domain, vector=False))
        assert_buffers_identical(vec, obj)
        # The trap is reachable: at least one row must have stopped early.
        assert any(p.used_genes < 8 and not p.goal_reached for p in vec.plans)

    def test_immediate_dead_end_uses_no_genes(self):
        # Start in the trap itself: every op count is zero, decode is empty.
        domain = TrapChainDomain(5)
        dec = _decoder(domain)
        ctx = _context(domain)
        ctx.start_state = -1
        dec.bind(ctx)
        arena = np.asarray([0.1, 0.9, 0.5], dtype=np.float64)
        total, gfit, costf, reached, used, plans = dec.decode_rows(
            arena, np.asarray([0]), np.asarray([3]), keep_plans=True
        )
        assert used[0] == 0 and gfit[0] == 0.0 and costf[0] == 1.0
        assert plans[0].operations == () and plans[0].final_state == -1

    def test_full_ga_on_dead_end_domain(self):
        domain = TrapChainDomain(4)
        config = GAConfig(
            population_size=12, generations=6, max_len=16, init_length=6
        )
        on = run_ga(domain, config.replace(vector_decode=True), make_rng(3))
        off = run_ga(domain, config.replace(vector_decode=False), make_rng(3))
        assert on.history.generations == off.history.generations
        np.testing.assert_array_equal(on.best.genes, off.best.genes)


class TestEmptyRows:
    def test_zero_length_row_scores_the_start_state(self):
        domain = HanoiDomain(3)
        dec = _decoder(domain)
        ctx = _context(domain)
        dec.bind(ctx)
        arena = np.asarray([0.5], dtype=np.float64)
        total, gfit, costf, reached, used, plans = dec.decode_rows(
            arena, np.asarray([0, 0]), np.asarray([0, 1]), keep_plans=True
        )
        # Row 0 consumed nothing: fitness of the untouched start state.
        assert used[0] == 0 and costf[0] == 1.0 and not reached[0]
        expected = ctx.fitness(plans[0])
        assert total[0] == expected.total and gfit[0] == expected.goal
        assert plans[0].state_keys == (domain.state_key(domain.initial_state),)
        assert used[1] == 1  # the non-empty neighbour row still walks

    def test_zero_rows_batch(self):
        domain = HanoiDomain(3)
        dec = _decoder(domain)
        dec.bind(_context(domain))
        total, gfit, costf, reached, used, plans = dec.decode_rows(
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            keep_plans=True,
        )
        assert total.shape == (0,) and plans == []


class TestPrefixResumeBoundaries:
    def _parent_plan(self, domain, genes):
        dec = _decoder(domain)
        dec.bind(_context(domain))
        arena = np.asarray(genes, dtype=np.float64)
        *_, plans = dec.decode_rows(
            arena, np.asarray([0]), np.asarray([len(genes)]), keep_plans=True
        )
        return dec, arena, plans[0]

    def _fresh(self, domain, arena):
        dec = _decoder(domain)
        dec.bind(_context(domain))
        return dec.decode_rows(
            arena, np.asarray([0]), np.asarray([arena.size]), keep_plans=True
        )

    @pytest.mark.parametrize("dirty", [1, 4, 8])
    def test_resume_matches_full_decode(self, dirty):
        domain = HanoiDomain(3)
        genes = make_rng(7).random(8)
        dec, arena, plan = self._parent_plan(domain, genes)
        before = dec.genes_reused
        out = dec.decode_rows(
            arena,
            np.asarray([0]),
            np.asarray([8]),
            keep_plans=True,
            hints=[(plan, dirty)],
        )
        ref = self._fresh(domain, arena)
        for got, want in zip(out[:5], ref[:5]):
            np.testing.assert_array_equal(got, want)
        assert out[5][0].state_keys == ref[5][0].state_keys
        # dirty == 8 is the row boundary: the whole row replays from the
        # retained walk, clamped to the row length.
        assert dec.genes_reused - before == min(dirty, plan.used_genes, 8)

    def test_parent_stopped_inside_prefix_copies_the_plan(self):
        # truncate_at_goal stops hanoi-2-style short solves early; emulate
        # with a parent whose used_genes < dirty by solving hanoi quickly.
        domain = TrapChainDomain(2)  # 2 steps to goal, rows longer than that
        genes = np.asarray([0.1, 0.1, 0.1, 0.1, 0.1], dtype=np.float64)
        dec, arena, plan = self._parent_plan(domain, genes)
        assert plan.used_genes == 2 and plan.goal_reached
        out = dec.decode_rows(
            arena,
            np.asarray([0]),
            np.asarray([5]),
            keep_plans=True,
            hints=[(plan, 4)],  # dirty beyond the parent's stop point
        )
        assert out[5][0] is plan  # the parent plan IS the child's plan
        ref = self._fresh(domain, arena)
        for got, want in zip(out[:5], ref[:5]):
            np.testing.assert_array_equal(got, want)


class TestEvictedTransitionFallback:
    def test_reset_invalidates_hints_and_falls_back(self):
        # A tiny max_states forces an overflow reset between generations;
        # hints pointing at evicted ids must fall back to a full decode.
        domain = TrapChainDomain(40, max_states=8)
        dec = _decoder(domain)
        dec.bind(_context(domain))
        genes = np.full(12, 0.2, dtype=np.float64)  # always "step": 12 states
        *_, plans = dec.decode_rows(
            genes, np.asarray([0]), np.asarray([12]), keep_plans=True
        )
        plan = plans[0]
        assert dec.kernel.overflowed
        dec.bind(_context(domain))  # bind() resets an overflowed kernel
        assert dec.kernel_resets == 1
        before = dec.prefix_fallbacks
        out = dec.decode_rows(
            genes,
            np.asarray([0]),
            np.asarray([12]),
            keep_plans=True,
            hints=[(plan, 6)],
        )
        assert dec.prefix_fallbacks == before + 1  # id_for_key missed
        ref_dec = _decoder(TrapChainDomain(40))
        ref_dec.bind(_context(TrapChainDomain(40)))
        ref = ref_dec.decode_rows(
            genes, np.asarray([0]), np.asarray([12]), keep_plans=True
        )
        for got, want in zip(out[:5], ref[:5]):
            np.testing.assert_array_equal(got, want)
        assert out[5][0].state_keys == ref[5][0].state_keys

    def test_ga_survives_constant_overflow(self):
        domain = TrapChainDomain(30, max_states=4)
        config = GAConfig(
            population_size=10, generations=5, max_len=12, init_length=6
        )
        on = run_ga(domain, config.replace(vector_decode=True), make_rng(11))
        off = run_ga(
            TrapChainDomain(30), config.replace(vector_decode=False), make_rng(11)
        )
        assert on.history.generations == off.history.generations


class TestConfigGuards:
    def test_vector_requires_decode_engine(self):
        with pytest.raises(ValueError, match="decode engine"):
            GAConfig(
                max_len=16, init_length=8, vector_decode=True, decode_engine=False
            )

    def test_vector_requires_batched(self):
        with pytest.raises(ValueError, match="structure-of-arrays"):
            GAConfig(max_len=16, init_length=8, vector_decode=True, batched=False)

    def test_vector_true_without_kernel_raises(self):
        domain = GridNavigationDomain(4, 4, [(0, 0)], [(3, 3)])
        assert not vector_supported(domain)
        config = GAConfig(
            population_size=6, generations=2, max_len=8, init_length=4,
            vector_decode=True,
        )
        with pytest.raises(ValueError, match="kernel"):
            run_ga(domain, config, make_rng(0))

    def test_vector_none_falls_back_without_kernel(self):
        domain = GridNavigationDomain(4, 4, [(0, 0)], [(3, 3)])
        config = GAConfig(
            population_size=6, generations=2, max_len=8, init_length=4
        )
        result = run_ga(domain, config, make_rng(0))  # auto-probe: object path
        assert result.generations_run == 2
