"""Tests for seeded RNG management."""

import numpy as np
import pytest

from repro.core.rng import make_rng, random_floats, spawn, spawn_many, stream


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(42), make_rng(42)
        assert a.random(10).tolist() == b.random(10).tolist()

    def test_different_seeds_differ(self):
        a, b = make_rng(1), make_rng(2)
        assert a.random(10).tolist() != b.random(10).tolist()

    def test_none_seed_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_are_independent_of_parent(self):
        parent = make_rng(7)
        child = spawn(parent)
        # Child stream differs from what the parent would have produced.
        assert child.random(10).tolist() != make_rng(7).random(10).tolist()

    def test_children_differ_from_each_other(self):
        parent = make_rng(7)
        a, b = spawn_many(parent, 2)
        assert a.random(10).tolist() != b.random(10).tolist()

    def test_spawn_is_reproducible(self):
        ours = [g.random(5).tolist() for g in spawn_many(make_rng(3), 4)]
        theirs = [g.random(5).tolist() for g in spawn_many(make_rng(3), 4)]
        assert ours == theirs

    def test_spawn_zero(self):
        assert spawn_many(make_rng(0), 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_many(make_rng(0), -1)

    def test_stream_yields_distinct_generators(self):
        it = stream(make_rng(5))
        a, b = next(it), next(it)
        assert a.random(5).tolist() != b.random(5).tolist()


class TestRandomFloats:
    def test_range(self):
        x = random_floats(make_rng(1), 1000)
        assert x.shape == (1000,)
        assert (x >= 0).all() and (x < 1).all()

    def test_zero_length(self):
        assert random_floats(make_rng(1), 0).shape == (0,)
