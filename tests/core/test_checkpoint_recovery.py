"""Checkpoint hardening: atomic writes, checksums, corrupt-file recovery."""

import pickle

import pytest

from repro.core import GAConfig, GARun, make_rng
from repro.core.checkpoint import (
    CheckpointError,
    capture,
    checkpoint_path,
    load_checkpoint,
    load_latest_checkpoint,
    save_checkpoint,
)
from repro.domains import HanoiDomain
from repro.obs import MetricsRegistry, Tracer
from repro.obs.sinks import MemoryRecorder


def _fresh_run(seed=0, steps=2):
    run = GARun(
        HanoiDomain(3),
        GAConfig(population_size=10, generations=20, max_len=35, init_length=7),
        make_rng(seed),
    )
    for _ in range(steps):
        run.step()
    return run


class TestIntegrity:
    def test_new_format_has_magic_header(self, tmp_path):
        run = _fresh_run()
        path = tmp_path / "ckpt.pkl"
        save_checkpoint(run, path)
        assert path.read_bytes().startswith(b"RGACKPT")
        assert load_checkpoint(path).generation == run.generation

    def test_truncated_file_rejected(self, tmp_path):
        run = _fresh_run()
        path = tmp_path / "ckpt.pkl"
        save_checkpoint(run, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="truncated|checksum"):
            load_checkpoint(path)

    def test_bitflip_rejected_by_checksum(self, tmp_path):
        run = _fresh_run()
        path = tmp_path / "ckpt.pkl"
        save_checkpoint(run, path)
        data = bytearray(path.read_bytes())
        data[-10] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_header_only_file_rejected(self, tmp_path):
        path = tmp_path / "ckpt.pkl"
        path.write_bytes(b"RGACKPT\x01\x00\x00")
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_legacy_bare_pickle_still_loads(self, tmp_path):
        ckpt = capture(_fresh_run())
        path = tmp_path / "legacy.pkl"
        path.write_bytes(pickle.dumps(ckpt))
        loaded = load_checkpoint(path)
        assert loaded.generation == ckpt.generation

    def test_wrong_version_rejected(self, tmp_path):
        ckpt = capture(_fresh_run())
        ckpt.version = 999
        path = tmp_path / "old.pkl"
        path.write_bytes(pickle.dumps(ckpt))
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_random_garbage_rejected(self, tmp_path):
        path = tmp_path / "noise.pkl"
        path.write_bytes(b"\x00\x01\x02 definitely not a pickle")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)


class TestAtomicity:
    def test_failed_save_leaves_no_partial_file(self, tmp_path, monkeypatch):
        run = _fresh_run()
        path = tmp_path / "ckpt.pkl"
        save_checkpoint(run, path)
        good = path.read_bytes()

        import repro.core.checkpoint as cp

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(cp.os, "replace", boom)
        with pytest.raises(OSError):
            save_checkpoint(run, path)
        monkeypatch.undo()
        # The original file is intact and no temp litter remains.
        assert path.read_bytes() == good
        assert list(tmp_path.iterdir()) == [path]

    def test_checkpoint_path_orders_lexically(self, tmp_path):
        paths = [checkpoint_path(tmp_path, g) for g in (2, 10, 100, 99)]
        assert sorted(str(p) for p in paths) == [
            str(checkpoint_path(tmp_path, g)) for g in (2, 10, 99, 100)
        ]


class TestLatestRecovery:
    def test_empty_directory_returns_none(self, tmp_path):
        assert load_latest_checkpoint(tmp_path) is None
        assert load_latest_checkpoint(tmp_path / "missing") is None

    def test_picks_newest_good_checkpoint(self, tmp_path):
        for steps in (1, 2, 3):
            run = _fresh_run(steps=steps)
            save_checkpoint(run, checkpoint_path(tmp_path, run.generation))
        ckpt, path = load_latest_checkpoint(tmp_path)
        assert ckpt.generation == 3
        assert path == checkpoint_path(tmp_path, 3)

    def test_recovers_past_corrupt_latest(self, tmp_path):
        run = _fresh_run(steps=2)
        good = checkpoint_path(tmp_path, 2)
        save_checkpoint(run, good)
        # Newest file is a torn write.
        corrupt = checkpoint_path(tmp_path, 3)
        corrupt.write_bytes(good.read_bytes()[:20])

        rec = MemoryRecorder()
        metrics = MetricsRegistry()
        ckpt, path = load_latest_checkpoint(tmp_path, tracer=Tracer([rec]), metrics=metrics)
        assert path == good
        assert ckpt.generation == 2
        events = [e for e in rec.events if e.kind == "checkpoint-recovered"]
        assert len(events) == 1
        assert events[0].skipped == 1
        assert events[0].path == str(good)
        assert metrics.counter("checkpoints_recovered").value == 1

    def test_no_recovery_event_when_latest_is_good(self, tmp_path):
        run = _fresh_run(steps=2)
        save_checkpoint(run, checkpoint_path(tmp_path, 2))
        rec = MemoryRecorder()
        ckpt, _ = load_latest_checkpoint(tmp_path, tracer=Tracer([rec]))
        assert ckpt.generation == 2
        assert [e for e in rec.events if e.kind == "checkpoint-recovered"] == []

    def test_all_corrupt_raises_with_details(self, tmp_path):
        for g in (1, 2):
            checkpoint_path(tmp_path, g).write_bytes(b"RGACKPT\x01 torn")
        with pytest.raises(CheckpointError, match="all 2 candidate"):
            load_latest_checkpoint(tmp_path)
