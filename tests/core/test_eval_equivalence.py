"""Engine-vs-naive equivalence: whole GA trajectories must be bit-identical.

``GAConfig.decode_engine`` switches between the incremental decode engine
and the naive per-genome decode.  The engine's contract (DESIGN.md §9) is
that the switch is *unobservable* in results: same seed → same per-generation
statistics, same best genome, same fitness, to the last bit.  Hypothesis
drives random configurations across all three crossover operators.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GAConfig, MultiPhaseConfig, make_rng, run_ga, run_multiphase
from repro.core.parallel import ProcessPoolEvaluator, SerialEvaluator
from repro.domains import HanoiDomain, SlidingTileDomain


def run_pair(domain, config, seed):
    """Run the same GA with the engine on and off; return both results."""
    on = run_ga(domain, config.replace(decode_engine=True), make_rng(seed))
    off = run_ga(domain, config.replace(decode_engine=False), make_rng(seed))
    return on, off


def assert_results_identical(on, off):
    assert on.history.generations == off.history.generations  # exact dataclass ==
    assert on.generations_run == off.generations_run
    assert on.solved_at_generation == off.solved_at_generation
    np.testing.assert_array_equal(on.best.genes, off.best.genes)
    assert on.best.fitness.total == off.best.fitness.total
    assert on.best.fitness.goal == off.best.fitness.goal
    assert on.best.decoded.operations == off.best.decoded.operations
    assert on.best.decoded.cost == off.best.decoded.cost


configs = st.fixed_dictionaries(
    {
        "population_size": st.integers(min_value=6, max_value=14),
        "generations": st.integers(min_value=2, max_value=5),
        "crossover": st.sampled_from(["random", "state-aware", "mixed"]),
        "crossover_rate": st.floats(min_value=0.0, max_value=1.0),
        "mutation_rate": st.floats(min_value=0.0, max_value=0.3),
        "elitism": st.integers(min_value=0, max_value=2),
        "truncate_at_goal": st.booleans(),
        "seed": st.integers(min_value=0, max_value=2**31),
    }
)


class TestEngineTrajectoryEquivalence:
    @given(configs)
    @settings(max_examples=12, deadline=None)
    def test_hanoi_random_configs(self, params):
        seed = params.pop("seed")
        config = GAConfig(max_len=32, init_length=(4, 16), **params)
        on, off = run_pair(HanoiDomain(3), config, seed)
        assert_results_identical(on, off)

    @given(configs)
    @settings(max_examples=8, deadline=None)
    def test_tile_random_configs(self, params):
        # The sliding tile overrides decode_key AND has abundant state-aware
        # matches, so this exercises the match_keys path hard.
        seed = params.pop("seed")
        config = GAConfig(max_len=40, init_length=(6, 20), **params)
        on, off = run_pair(SlidingTileDomain(3), config, seed)
        assert_results_identical(on, off)

    @pytest.mark.parametrize("crossover", ["random", "state-aware", "mixed"])
    def test_longer_run_per_crossover(self, crossover):
        config = GAConfig(
            population_size=20,
            generations=15,
            max_len=64,
            init_length=16,
            crossover=crossover,
        )
        on, off = run_pair(HanoiDomain(4), config, 424242)
        assert_results_identical(on, off)


class TestMultiphaseEquivalence:
    def test_multiphase_engine_on_off(self):
        domain = HanoiDomain(4)
        base = GAConfig(
            population_size=16, generations=8, max_len=40, init_length=12
        )
        on = run_multiphase(
            domain,
            MultiPhaseConfig(phase=base.replace(decode_engine=True), max_phases=3),
            make_rng(99),
        )
        off = run_multiphase(
            domain,
            MultiPhaseConfig(phase=base.replace(decode_engine=False), max_phases=3),
            make_rng(99),
        )
        assert on.plan == off.plan
        assert on.goal_fitness == off.goal_fitness
        assert on.solved == off.solved
        assert on.total_generations == off.total_generations
        for a, b in zip(on.phases, off.phases):
            assert a.result.history.generations == b.result.history.generations


class TestProcessPoolEquivalence:
    def test_pool_matches_naive_serial(self):
        domain = HanoiDomain(3)
        config = GAConfig(
            population_size=16, generations=6, max_len=32, init_length=10
        )
        with ProcessPoolEvaluator(processes=2, chunk_size=4) as pool:
            on = run_ga(
                domain, config.replace(decode_engine=True), make_rng(7), evaluator=pool
            )
        off = run_ga(
            domain,
            config.replace(decode_engine=False),
            make_rng(7),
            evaluator=SerialEvaluator(),
        )
        assert_results_identical(on, off)
