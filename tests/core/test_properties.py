"""Property-based tests (hypothesis) on the GA core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    Individual,
    decode,
    encode_operations,
    gene_to_index,
    make_rng,
    random_crossover,
    uniform_reset_mutation,
)
from repro.core.fitness import cost_fitness
from repro.domains import HanoiDomain, SlidingTileDomain

genes_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=40),
    elements=st.floats(min_value=0.0, max_value=0.999999, allow_nan=False),
)


class TestGeneToIndexProperties:
    @given(st.floats(min_value=0.0, max_value=0.9999999), st.integers(1, 50))
    def test_index_in_range(self, gene, k):
        assert 0 <= gene_to_index(gene, k) < k

    @given(st.integers(1, 50))
    def test_bins_cover_all_indices(self, k):
        hit = {gene_to_index((i + 0.5) / k, k) for i in range(k)}
        assert hit == set(range(k))

    @given(
        st.floats(min_value=0.0, max_value=0.999999),
        st.floats(min_value=0.0, max_value=0.999999),
        st.integers(1, 20),
    )
    def test_monotone_in_gene(self, a, b, k):
        lo, hi = sorted((a, b))
        assert gene_to_index(lo, k) <= gene_to_index(hi, k)


class TestDecodeProperties:
    @given(genes_arrays)
    @settings(max_examples=50, deadline=None)
    def test_decoded_plan_is_always_valid(self, genes):
        """Paper's core claim: indirect encoding admits no invalid operation."""
        domain = HanoiDomain(3)
        d = decode(genes, domain, domain.initial_state, truncate_at_goal=False)
        state = domain.initial_state
        for op in d.operations:
            assert op in list(domain.valid_operations(state))
            state = domain.apply(state, op)

    @given(genes_arrays)
    @settings(max_examples=50, deadline=None)
    def test_match_fitness_invariant(self, genes):
        """Used genes == decoded ops; cost == plan length for unit costs."""
        domain = HanoiDomain(3)
        d = decode(genes, domain, domain.initial_state, truncate_at_goal=False)
        assert d.used_genes == len(d.operations)
        assert d.cost == float(len(d.operations))
        assert len(d.state_keys) == len(d.operations) + 1

    @given(genes_arrays)
    @settings(max_examples=30, deadline=None)
    def test_truncation_never_lengthens(self, genes):
        domain = HanoiDomain(3)
        full = decode(genes, domain, domain.initial_state, truncate_at_goal=False)
        trunc = decode(genes, domain, domain.initial_state, truncate_at_goal=True)
        assert len(trunc.operations) <= len(full.operations)
        if trunc.goal_reached:
            assert domain.is_goal(trunc.final_state)

    @given(genes_arrays)
    @settings(max_examples=30, deadline=None)
    def test_tile_goal_fitness_bounds(self, genes):
        domain = SlidingTileDomain(3)
        d = decode(genes, domain, domain.initial_state)
        f = domain.goal_fitness(d.final_state)
        assert 0.0 <= f <= 1.0


class TestEncodeDecodeRoundTrip:
    @given(st.integers(0, 200), st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_random_walk_round_trips(self, seed, n_disks):
        """Any valid op sequence encodes to genes that decode back to it."""
        domain = HanoiDomain(n_disks)
        rng = make_rng(seed)
        state = domain.initial_state
        ops = []
        for _ in range(15):
            valid = list(domain.valid_operations(state))
            op = valid[int(rng.integers(0, len(valid)))]
            ops.append(op)
            state = domain.apply(state, op)
        genes = encode_operations(domain, domain.initial_state, ops)
        d = decode(genes, domain, domain.initial_state, truncate_at_goal=False)
        assert list(d.operations) == ops


class TestOperatorProperties:
    @given(genes_arrays, genes_arrays, st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_crossover_children_well_formed(self, g1, g2, seed):
        rng = make_rng(seed)
        c1, c2 = random_crossover(Individual(genes=g1), Individual(genes=g2), rng, max_len=50)
        for c in (c1, c2):
            assert 1 <= len(c) <= 50
            assert (c.genes >= 0).all() and (c.genes < 1).all()

    @given(genes_arrays, st.floats(0.0, 1.0), st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_mutation_preserves_shape_and_range(self, genes, rate, seed):
        rng = make_rng(seed)
        out = uniform_reset_mutation(Individual(genes=genes), rate, rng)
        assert len(out) == len(genes)
        assert (out.genes >= 0).all() and (out.genes < 1).all()


class TestFitnessProperties:
    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_cost_fitness_in_unit_interval(self, cost):
        f = cost_fitness(cost)
        assert 0.0 < f <= 1.0

    @given(
        st.floats(min_value=0.0, max_value=1e6),
        st.floats(min_value=0.0, max_value=1e6),
    )
    def test_cost_fitness_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert cost_fitness(lo) >= cost_fitness(hi)
