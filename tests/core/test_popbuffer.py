"""PopulationBuffer unit behaviour: packing, stats, hints, subset ops.

Trajectory-level equivalence lives in ``test_batched_equivalence.py``; this
file pins the buffer's own contracts — lossless Individual round-trips,
``GenerationStats.from_buffer`` equality, ``best_index`` tie-breaking, and
the property that a batched generation carries exactly the same
incremental-decode lineage (``dirty_from`` + prefix plan) per offspring as
the per-individual object path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GAConfig, GARun, Individual, PopulationBuffer, make_rng
from repro.core.popbuffer import breed, select_parent_indices
from repro.core.stats import GenerationStats
from repro.domains import HanoiDomain


def evaluated_run(config, seed, batched):
    run = GARun(HanoiDomain(3), config.replace(batched=batched), make_rng(seed))
    run._evaluate_and_record()
    return run


BASE = GAConfig(population_size=12, generations=3, max_len=24, init_length=(4, 12))


class TestRoundTrip:
    def test_unevaluated_round_trip(self):
        rng = make_rng(3)
        population = [Individual.random(int(rng.integers(1, 9)), rng) for _ in range(7)]
        buf = PopulationBuffer.from_individuals(population)
        back = buf.to_individuals()
        assert len(back) == len(population)
        for a, b in zip(population, back):
            np.testing.assert_array_equal(a.genes, b.genes)
            assert not b.is_evaluated

    def test_evaluated_round_trip_preserves_fitness_and_plans(self):
        run = evaluated_run(BASE, 17, batched=False)
        population = run.population
        buf = PopulationBuffer.from_individuals(population)
        np.testing.assert_array_equal(buf.evaluated, np.ones(len(population), bool))
        for i, ind in enumerate(buf.to_individuals()):
            src = population[i]
            np.testing.assert_array_equal(ind.genes, src.genes)
            assert ind.fitness == src.fitness
            assert ind.decoded.operations == src.decoded.operations

    def test_views_are_zero_copy_and_read_only(self):
        run = evaluated_run(BASE, 17, batched=True)
        buf = run.buffer
        view = buf.view(0)
        assert view.base is buf.genes or view.base is buf.genes.base
        with pytest.raises(ValueError):
            view[0] = 0.5

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            PopulationBuffer.from_individuals([])


class TestStatsAndBest:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_from_buffer_matches_from_population(self, seed):
        run = evaluated_run(BASE, seed, batched=False)
        population = run.population
        buf = PopulationBuffer.from_individuals(population)
        assert GenerationStats.from_buffer(0, buf) == GenerationStats.from_population(
            0, population
        )

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_best_index_matches_object_max(self, seed):
        run = evaluated_run(BASE, seed, batched=False)
        population = run.population
        buf = PopulationBuffer.from_individuals(population)
        expected = max(range(len(population)), key=lambda i: population[i].sort_key())
        assert buf.best_index() == expected

    def test_best_index_requires_evaluation(self):
        rng = make_rng(0)
        buf = PopulationBuffer.from_individuals(
            [Individual.random(4, rng) for _ in range(3)]
        )
        with pytest.raises(ValueError, match="evaluated"):
            buf.best_index()

    def test_select_requires_evaluation(self):
        rng = make_rng(0)
        buf = PopulationBuffer.from_individuals(
            [Individual.random(4, rng) for _ in range(3)]
        )
        with pytest.raises(ValueError, match="evaluated"):
            select_parent_indices(buf, BASE, rng)


class TestSubsetOps:
    def test_take_preserves_rows_in_order(self):
        run = evaluated_run(BASE, 23, batched=True)
        buf = run.buffer
        rows = np.array([4, 0, 7], dtype=np.int64)
        sub = buf.take(rows)
        assert sub.n == 3
        for j, r in enumerate(rows):
            np.testing.assert_array_equal(sub.view(j), buf.view(int(r)))
            assert sub.total[j] == buf.total[r]
            assert sub.plans[j] is buf.plans[int(r)]

    def test_concatenate_stacks_parts(self):
        run = evaluated_run(BASE, 23, batched=True)
        buf = run.buffer
        a = buf.take(np.arange(4))
        b = buf.take(np.arange(4, buf.n))
        whole = PopulationBuffer.concatenate([a, b])
        assert whole.n == buf.n
        np.testing.assert_array_equal(whole.genes, buf.genes)
        np.testing.assert_array_equal(whole.total, buf.total)
        np.testing.assert_array_equal(whole.evaluated, buf.evaluated)


class TestDirtyFromLineage:
    """Arena-wide breeding must carry per-individual decode hints exactly."""

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.sampled_from(["random", "state-aware", "mixed"]),
        st.floats(min_value=0.0, max_value=0.4),
        st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=15, deadline=None)
    def test_batched_generation_hints_match_object_path(
        self, seed, crossover, mutation_rate, elitism
    ):
        config = BASE.replace(
            crossover=crossover, mutation_rate=mutation_rate, elitism=elitism
        )
        on = evaluated_run(config, seed, batched=True)
        off = evaluated_run(config, seed, batched=False)
        on._next_generation()
        off._next_generation()
        buf = on.buffer
        offspring = off.population
        assert buf.n == len(offspring)
        for i, ind in enumerate(offspring):
            np.testing.assert_array_equal(buf.view(i), ind.genes)
            if ind.is_evaluated:
                # Unmutated clones keep their parent's evaluation either way.
                assert bool(buf.evaluated[i])
                assert buf.fitness_result(i) == ind.fitness
                continue
            assert not bool(buf.evaluated[i])
            if ind.prefix_plan is not None and ind.dirty_from is not None:
                assert int(buf.dirty_from[i]) == ind.dirty_from
                assert buf.prefix_plans[i] is not None
                assert (
                    buf.prefix_plans[i].operations == ind.prefix_plan.operations
                )
            else:
                assert int(buf.dirty_from[i]) == -1
                assert buf.prefix_plans[i] is None

    def test_breed_validates_mutation_rate(self):
        run = evaluated_run(BASE, 1, batched=True)
        bad = BASE.replace(mutation_rate=0.1)
        object.__setattr__(bad, "mutation_rate", 1.5)
        idx = select_parent_indices(run.buffer, BASE, make_rng(0))
        with pytest.raises(ValueError, match="mutation rate"):
            breed(run.buffer, idx, bad, make_rng(0))
