"""Tests for GA checkpoint save/restore."""

import numpy as np
import pytest

from repro.core import GAConfig, GARun, make_rng
from repro.core.checkpoint import capture, load_checkpoint, restore_run, save_checkpoint
from repro.domains import HanoiDomain


def _fresh_run(seed=0, **cfg_kw):
    base = dict(population_size=10, generations=20, max_len=35, init_length=7)
    base.update(cfg_kw)
    return GARun(HanoiDomain(3), GAConfig(**base), make_rng(seed))


class TestCheckpoint:
    def test_round_trip_resumes_identically(self, tmp_path):
        # Run A: 6 steps straight through.
        run_a = _fresh_run(seed=1)
        for _ in range(3):
            run_a.step()
        path = tmp_path / "ckpt.pkl"
        save_checkpoint(run_a, path)
        for _ in range(3):
            run_a.step()

        # Run B: restore at step 3 and continue.
        run_b = restore_run(_fresh_run(seed=999), load_checkpoint(path))
        assert run_b.generation == 3
        for _ in range(3):
            run_b.step()

        stats_a = run_a.history.generations[-1]
        stats_b = run_b.history.generations[-1]
        assert stats_a.best_total == pytest.approx(stats_b.best_total)
        assert stats_a.mean_total == pytest.approx(stats_b.mean_total)

    def test_population_size_mismatch_rejected(self, tmp_path):
        run = _fresh_run()
        run.step()
        path = tmp_path / "ckpt.pkl"
        save_checkpoint(run, path)
        other = _fresh_run(population_size=20)
        with pytest.raises(ValueError, match="population size"):
            restore_run(other, load_checkpoint(path))

    def test_capture_preserves_best(self):
        run = _fresh_run()
        for _ in range(5):
            run.step()
        ckpt = capture(run)
        assert ckpt.best_genes is not None
        assert np.array_equal(ckpt.best_genes, run.best.genes)

    def test_load_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.pkl"
        import pickle

        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(ValueError, match="Checkpoint"):
            load_checkpoint(path)

    def test_version_check(self, tmp_path):
        run = _fresh_run()
        run.step()
        ckpt = capture(run)
        ckpt.version = 999
        import pickle

        path = tmp_path / "old.pkl"
        path.write_bytes(pickle.dumps(ckpt))
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_creates_parent_dirs(self, tmp_path):
        run = _fresh_run()
        run.step()
        path = tmp_path / "a" / "b" / "ckpt.pkl"
        save_checkpoint(run, path)
        assert path.exists()
