"""Validation tests for GAConfig / MultiPhaseConfig."""

import pytest

from repro.core import GAConfig, MultiPhaseConfig


class TestGAConfigDefaults:
    def test_paper_defaults(self):
        cfg = GAConfig(max_len=100)
        assert cfg.population_size == 200
        assert cfg.generations == 500
        assert cfg.crossover_rate == 0.9
        assert cfg.mutation_rate == 0.01
        assert cfg.tournament_size == 2
        assert cfg.goal_weight == 0.9
        assert cfg.cost_weight == 0.1
        assert cfg.crossover == "random"

    def test_replace_returns_new(self):
        cfg = GAConfig(max_len=100)
        other = cfg.replace(population_size=10)
        assert other.population_size == 10
        assert cfg.population_size == 200


class TestGAConfigValidation:
    @pytest.mark.parametrize("field,value", [
        ("population_size", 1),
        ("population_size", 0),
        ("generations", 0),
        ("crossover_rate", -0.1),
        ("crossover_rate", 1.1),
        ("mutation_rate", 2.0),
        ("tournament_size", 0),
        ("max_len", 0),
        ("init_length", 0),
        ("elitism", -1),
    ])
    def test_bad_values_raise(self, field, value):
        with pytest.raises(ValueError):
            GAConfig(**{"max_len": 100, field: value})

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            GAConfig(max_len=100, goal_weight=0.9, cost_weight=0.2)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            GAConfig(max_len=100, goal_weight=1.5, cost_weight=-0.5)

    def test_unknown_crossover_rejected(self):
        with pytest.raises(ValueError):
            GAConfig(max_len=100, crossover="two-point")

    def test_init_length_range_validated(self):
        with pytest.raises(ValueError):
            GAConfig(max_len=100, init_length=(10, 5))

    def test_init_length_above_max_len_rejected(self):
        with pytest.raises(ValueError):
            GAConfig(max_len=10, init_length=20)
        with pytest.raises(ValueError):
            GAConfig(max_len=10, init_length=(5, 20))

    def test_init_length_range_accepted(self):
        cfg = GAConfig(max_len=100, init_length=(5, 20))
        assert cfg.init_length == (5, 20)

    def test_elitism_below_population(self):
        with pytest.raises(ValueError):
            GAConfig(max_len=100, population_size=10, elitism=10)


class TestMultiPhaseConfig:
    def test_defaults(self):
        mp = MultiPhaseConfig()
        assert mp.max_phases == 5
        assert mp.phase.generations == 100
        assert not mp.phase.stop_on_goal

    def test_bad_phase_count(self):
        with pytest.raises(ValueError):
            MultiPhaseConfig(max_phases=0)

    def test_replace(self):
        mp = MultiPhaseConfig().replace(max_phases=3)
        assert mp.max_phases == 3
