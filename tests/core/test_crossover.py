"""Tests for the three crossover mechanisms."""

import numpy as np
import pytest

from repro.core import (
    EvaluationContext,
    FitnessFunction,
    Individual,
    SerialEvaluator,
    make_rng,
    mixed_crossover,
    random_crossover,
    state_aware_crossover,
)
from repro.domains import HanoiDomain


def _evaluated(domain, genes):
    ind = Individual(genes=np.asarray(genes, dtype=float))
    ctx = EvaluationContext(domain, domain.initial_state, FitnessFunction(domain))
    SerialEvaluator().evaluate([ind], ctx)
    return ind


class TestRandomCrossover:
    def test_children_are_valid_individuals(self, rng):
        p1 = Individual(genes=rng.random(10))
        p2 = Individual(genes=rng.random(6))
        c1, c2 = random_crossover(p1, p2, rng)
        assert len(c1) >= 1 and len(c2) >= 1

    def test_total_gene_count_preserved(self, rng):
        # One-point crossover redistributes genes without losing any
        # (before MaxLen clipping).
        p1 = Individual(genes=rng.random(10))
        p2 = Individual(genes=rng.random(6))
        c1, c2 = random_crossover(p1, p2, rng, max_len=None)
        assert len(c1) + len(c2) == 16

    def test_max_len_enforced(self, rng):
        p1 = Individual(genes=rng.random(30))
        p2 = Individual(genes=rng.random(30))
        for _ in range(20):
            c1, c2 = random_crossover(p1, p2, rng, max_len=32)
            assert len(c1) <= 32 and len(c2) <= 32

    def test_genes_come_from_parents(self, rng):
        p1 = Individual(genes=np.full(8, 0.25))
        p2 = Individual(genes=np.full(8, 0.75))
        c1, c2 = random_crossover(p1, p2, rng)
        pool = {0.25, 0.75}
        assert set(np.round(c1.genes, 2)) <= pool
        assert set(np.round(c2.genes, 2)) <= pool

    def test_single_gene_parents(self, rng):
        p1 = Individual(genes=np.array([0.2]))
        p2 = Individual(genes=np.array([0.8]))
        c1, c2 = random_crossover(p1, p2, rng)
        assert len(c1) >= 1 and len(c2) >= 1

    def test_children_are_new_objects(self, rng):
        p1 = Individual(genes=rng.random(5))
        p2 = Individual(genes=rng.random(5))
        c1, c2 = random_crossover(p1, p2, rng)
        assert c1 is not p1 and c2 is not p2


class TestStateAwareCrossover:
    def test_requires_decoded_parents(self, rng):
        p1 = Individual(genes=rng.random(5))
        p2 = Individual(genes=rng.random(5))
        with pytest.raises(ValueError, match="decoded"):
            state_aware_crossover(p1, p2, rng)

    def test_preserves_suffix_semantics(self):
        """The defining property: genes to the right of the cut decode to the
        same operations in the child as they did in the donor parent."""
        domain = HanoiDomain(4)
        rng = make_rng(42)
        hits = 0
        for _ in range(40):
            p1 = _evaluated(domain, rng.random(16))
            p2 = _evaluated(domain, rng.random(16))
            c1, c2 = state_aware_crossover(p1, p2, rng, max_len=64)
            if c1.genes is p1.genes and c2.genes is p2.genes:
                continue  # no matching cut; parents copied
            hits += 1
            ctx = EvaluationContext(domain, domain.initial_state, FitnessFunction(domain))
            SerialEvaluator().evaluate([c1, c2], ctx)
            # The child's op sequence must be a prefix of p1's ops followed
            # by a contiguous run of p2's ops: the inherited suffix keeps
            # the meaning it had in the donor parent.
            _assert_spliced(c1.decoded.operations, p1.decoded.operations, p2.decoded.operations)
        assert hits > 0  # identical start states guarantee some matches

    def test_no_match_copies_parents(self):
        """When no matching cut exists the parents survive unchanged."""
        domain = HanoiDomain(3)
        rng = make_rng(7)
        p1 = _evaluated(domain, [0.01] * 4)
        p2 = _evaluated(domain, [0.99] * 4)
        # Run repeatedly; when no matching state exists the parents return.
        c1, c2 = state_aware_crossover(p1, p2, rng)
        assert len(c1) >= 1 and len(c2) >= 1


def _assert_spliced(child_ops, p1_ops, p2_ops):
    """Child ops = prefix of p1's ops + contiguous slice of p2's ops."""
    n = len(child_ops)
    for cut in range(n + 1):
        if tuple(child_ops[:cut]) != tuple(p1_ops[:cut]):
            continue
        suffix = tuple(child_ops[cut:])
        if not suffix:
            return
        for j in range(len(p2_ops) + 1):
            if tuple(p2_ops[j : j + len(suffix)]) == suffix:
                return
    raise AssertionError(
        f"child {child_ops} is not a splice of {p1_ops} and {p2_ops}"
    )


class TestMixedCrossover:
    def test_produces_children(self):
        domain = HanoiDomain(3)
        rng = make_rng(9)
        p1 = _evaluated(domain, rng.random(8))
        p2 = _evaluated(domain, rng.random(8))
        c1, c2 = mixed_crossover(p1, p2, rng, max_len=32)
        assert len(c1) >= 1 and len(c2) >= 1

    def test_falls_back_to_random_not_copy(self):
        """Unlike pure state-aware, mixed must still recombine when no state
        match exists — verify children differ from parents at least once."""
        domain = HanoiDomain(4)
        rng = make_rng(11)
        changed = 0
        for _ in range(30):
            p1 = _evaluated(domain, rng.random(12))
            p2 = _evaluated(domain, rng.random(12))
            c1, c2 = mixed_crossover(p1, p2, rng, max_len=64)
            if not np.array_equal(c1.genes, p1.genes):
                changed += 1
        assert changed > 0

    def test_max_len_enforced(self):
        domain = HanoiDomain(3)
        rng = make_rng(13)
        for _ in range(20):
            p1 = _evaluated(domain, rng.random(20))
            p2 = _evaluated(domain, rng.random(20))
            c1, c2 = mixed_crossover(p1, p2, rng, max_len=24)
            assert len(c1) <= 24 and len(c2) <= 24


class TestDecodeKeyMatching:
    """State-aware matching uses decode-behaviour equivalence (decode_key)."""

    def test_tile_matches_on_blank_position(self):
        """Two different tile states with the same blank position must be
        accepted as a match — the gene→move mapping depends only on the
        blank (the paper's 'same genetic code maps to the same operation
        sequence' condition)."""
        from repro.domains import SlidingTileDomain

        domain = SlidingTileDomain(3)
        rng = make_rng(21)
        spliced = 0
        for _ in range(30):
            p1 = _evaluated(domain, rng.random(12))
            p2 = _evaluated(domain, rng.random(12))
            c1, c2 = state_aware_crossover(p1, p2, rng, max_len=40)
            if not (c1.genes is p1.genes and c2.genes is p2.genes):
                spliced += 1
        # Blank positions coincide often: the vast majority must splice.
        assert spliced >= 20

    def test_tile_suffix_moves_preserved(self):
        """After a blank-position match, the child's inherited suffix decodes
        to the same *move sequence* it had in the donor parent."""
        from repro.domains import SlidingTileDomain

        domain = SlidingTileDomain(3)
        rng = make_rng(22)
        checked = 0
        for _ in range(30):
            p1 = _evaluated(domain, rng.random(10))
            p2 = _evaluated(domain, rng.random(10))
            c1, c2 = state_aware_crossover(p1, p2, rng, max_len=40)
            if c1.genes is p1.genes and c2.genes is p2.genes:
                continue
            ctx = EvaluationContext(domain, domain.initial_state, FitnessFunction(domain))
            SerialEvaluator().evaluate([c1], ctx)
            _assert_spliced(c1.decoded.operations, p1.decoded.operations, p2.decoded.operations)
            checked += 1
        assert checked >= 10
