"""Shared-memory segment lifecycle: no ``/dev/shm`` leaks, ever.

The zero-copy dispatch path publishes each generation through one
``multiprocessing.shared_memory`` segment owned by the parent.  These tests
pin the ownership contract: the segment is unlinked on :meth:`close` and on
:meth:`restart` (a fresh one replaces it), survives reuse across batches,
is never created with ``shm=False``, and worker crashes mid-batch leave
nothing behind once the evaluator is closed.
"""

import os
from multiprocessing import shared_memory

import pytest

from repro.core import GAConfig, GARun, make_rng, run_ga
from repro.core.parallel import ProcessPoolEvaluator
from repro.core.resilient import ResiliencePolicy, ResilientEvaluator
from repro.domains import HanoiDomain

CONFIG = GAConfig(population_size=12, generations=3, max_len=24, init_length=8)


def shm_entries():
    """Current kernel-named shared-memory segments (Linux); None elsewhere."""
    if not os.path.isdir("/dev/shm"):
        return None
    return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}


def assert_unlinked(name):
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


class TestSegmentLifecycle:
    def test_segment_exists_during_run_and_unlinked_on_close(self):
        pool = ProcessPoolEvaluator(processes=2)
        try:
            run_ga(HanoiDomain(3), CONFIG, make_rng(0), evaluator=pool)
            assert pool._segment is not None
            name = pool._segment.name
            # Live while the evaluator is open: attach must succeed.
            probe = shared_memory.SharedMemory(name=name)
            probe.close()
        finally:
            pool.close()
        assert pool._segment is None
        assert_unlinked(name)

    def test_segment_reused_across_batches(self):
        # Mutation-only breeding keeps genome lengths fixed, so every
        # generation fits the first (over-allocated) segment exactly.
        config = CONFIG.replace(crossover_rate=0.0)
        with ProcessPoolEvaluator(processes=2) as pool:
            run = GARun(HanoiDomain(3), config, make_rng(1), evaluator=pool)
            run.step()
            first = pool._segment.name
            run.step()
            assert pool._segment.name == first

    def test_restart_unlinks_and_replaces_segment(self):
        with ProcessPoolEvaluator(processes=2) as pool:
            run = GARun(HanoiDomain(3), CONFIG, make_rng(3), evaluator=pool)
            run.step()
            old = pool._segment.name
            pool.restart()
            assert_unlinked(old)
            # The pool still works and publishes into a fresh segment.
            run.step()
            assert pool._segment is not None
            assert pool._segment.name != old

    def test_shm_off_never_creates_a_segment(self):
        with ProcessPoolEvaluator(processes=2, shm=False) as pool:
            run_ga(HanoiDomain(3), CONFIG, make_rng(5), evaluator=pool)
            assert pool._segment is None

    def test_close_is_idempotent(self):
        pool = ProcessPoolEvaluator(processes=2)
        run_ga(HanoiDomain(3), CONFIG, make_rng(6), evaluator=pool)
        pool.close()
        pool.close()
        assert pool._segment is None


class TestCrashRecoveryLeavesNoLeaks:
    def test_worker_crash_leaves_no_dev_shm_entries(self):
        before = shm_entries()
        policy = ResiliencePolicy(retry_max=2, sleep=lambda s: None)
        evaluator = ResilientEvaluator(
            inner=ProcessPoolEvaluator(processes=2),
            policy=policy,
            worker_crashes=1,
        )
        try:
            result = run_ga(HanoiDomain(3), CONFIG, make_rng(7), evaluator=evaluator)
            assert result.best is not None
        finally:
            evaluator.close()
        after = shm_entries()
        if before is not None:
            assert after - before == set()
