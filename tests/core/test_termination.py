"""Tests for termination criteria."""

import pytest

from repro.core import (
    Deadline,
    FitnessTarget,
    GAConfig,
    GARun,
    GenerationLimit,
    Stagnation,
    all_of,
    any_of,
    make_rng,
)
from repro.core.stats import GenerationStats
from repro.domains import HanoiDomain


def _stats(gen, best=0.5):
    return GenerationStats(
        generation=gen, best_total=best, mean_total=best / 2, best_goal=best,
        mean_goal=best / 2, mean_length=10.0, max_length=10, min_length=10,
        solved_count=0,
    )


class TestStagnation:
    def test_fires_after_patience_without_improvement(self):
        s = Stagnation(patience=3)
        assert not s(_stats(0, 0.5))
        assert not s(_stats(1, 0.5))
        assert not s(_stats(2, 0.5))
        assert s(_stats(3, 0.5))  # 3 generations with no improvement

    def test_improvement_resets(self):
        s = Stagnation(patience=2)
        s(_stats(0, 0.5))
        s(_stats(1, 0.5))
        assert not s(_stats(2, 0.6))  # improved: counter resets
        assert not s(_stats(3, 0.6))
        assert s(_stats(4, 0.6))

    def test_min_delta(self):
        s = Stagnation(patience=1, min_delta=0.1)
        s(_stats(0, 0.5))
        assert s(_stats(1, 0.55))  # below min_delta: counts as stagnant

    def test_reset(self):
        s = Stagnation(patience=1)
        s(_stats(0, 0.5))
        assert s(_stats(1, 0.5))
        s.reset()
        assert not s(_stats(2, 0.4))

    def test_validation(self):
        with pytest.raises(ValueError):
            Stagnation(patience=0)
        with pytest.raises(ValueError):
            Stagnation(patience=1, min_delta=-1)


class TestOtherCriteria:
    def test_fitness_target(self):
        c = FitnessTarget(0.9)
        assert not c(_stats(0, 0.8))
        assert c(_stats(1, 0.9))

    def test_generation_limit(self):
        c = GenerationLimit(5)
        assert not c(_stats(4))
        assert c(_stats(5))
        with pytest.raises(ValueError):
            GenerationLimit(-1)

    def test_deadline(self):
        t = [0.0]
        c = Deadline(10.0, clock=lambda: t[0])
        assert not c(_stats(0))
        t[0] = 11.0
        assert c(_stats(1))
        with pytest.raises(ValueError):
            Deadline(0)


class TestCombinators:
    def test_any_of(self):
        c = any_of(FitnessTarget(0.9), GenerationLimit(5))
        assert not c(_stats(0, 0.5))
        assert c(_stats(1, 0.95))
        assert c(_stats(6, 0.1))

    def test_all_of(self):
        c = all_of(FitnessTarget(0.9), GenerationLimit(5))
        assert not c(_stats(1, 0.95))
        assert not c(_stats(6, 0.1))
        assert c(_stats(6, 0.95))

    def test_any_of_evaluates_all_for_state(self):
        """Stateful criteria must tick even when another fires first."""
        stag = Stagnation(patience=1)
        c = any_of(GenerationLimit(0), stag)
        assert c(_stats(0, 0.5))  # limit fires, but stagnation also ticked
        assert stag._since == 0  # first call set the baseline


class TestIntegrationWithGARun:
    def test_stagnation_stops_run_early(self):
        domain = HanoiDomain(3)
        cfg = GAConfig(
            population_size=10, generations=200, max_len=35, init_length=7,
            stop_on_goal=False, mutation_rate=0.0, crossover_rate=0.0,
        )
        # With no variation operators the population cannot improve, so
        # stagnation fires almost immediately.
        run = GARun(domain, cfg, make_rng(0))
        result = run.run(on_generation=Stagnation(patience=5))
        assert result.generations_run < 200
