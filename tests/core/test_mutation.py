"""Tests for mutation operators."""

import numpy as np
import pytest

from repro.core import (
    Individual,
    deletion_mutation,
    insertion_mutation,
    make_rng,
    uniform_reset_mutation,
)


class TestUniformReset:
    def test_rate_zero_is_identity(self, rng):
        ind = Individual(genes=rng.random(10))
        assert uniform_reset_mutation(ind, 0.0, rng) is ind

    def test_rate_one_changes_most_genes(self):
        rng = make_rng(0)
        ind = Individual(genes=np.full(100, 0.5))
        out = uniform_reset_mutation(ind, 1.0, rng)
        assert (out.genes != 0.5).sum() > 90  # collisions with 0.5 ~ never

    def test_length_preserved(self, rng):
        ind = Individual(genes=rng.random(17))
        out = uniform_reset_mutation(ind, 0.5, rng)
        assert len(out) == 17

    def test_expected_mutation_count(self):
        rng = make_rng(1)
        ind = Individual(genes=np.full(10_000, 0.5))
        out = uniform_reset_mutation(ind, 0.01, rng)
        changed = int((out.genes != 0.5).sum())
        assert 60 < changed < 140  # ~100 expected

    def test_original_untouched(self, rng):
        genes = rng.random(20)
        ind = Individual(genes=genes)
        uniform_reset_mutation(ind, 1.0, rng)
        assert np.array_equal(ind.genes, genes)

    def test_genes_stay_in_range(self, rng):
        ind = Individual(genes=rng.random(50))
        out = uniform_reset_mutation(ind, 1.0, rng)
        assert (out.genes >= 0).all() and (out.genes < 1).all()

    def test_bad_rate_rejected(self, rng):
        ind = Individual(genes=rng.random(5))
        with pytest.raises(ValueError):
            uniform_reset_mutation(ind, 1.5, rng)

    def test_no_mutation_returns_same_object(self):
        rng = make_rng(2)
        ind = Individual(genes=np.full(3, 0.5))
        # With rate tiny and few genes, usually nothing mutates.
        results = [uniform_reset_mutation(ind, 1e-9, rng) for _ in range(10)]
        assert any(r is ind for r in results)


class TestInsertion:
    def test_length_grows_by_one(self, rng):
        ind = Individual(genes=rng.random(5))
        out = insertion_mutation(ind, rng)
        assert len(out) == 6

    def test_respects_max_len(self, rng):
        ind = Individual(genes=rng.random(5))
        assert insertion_mutation(ind, rng, max_len=5) is ind

    def test_original_genes_present_in_order(self):
        rng = make_rng(3)
        ind = Individual(genes=np.array([0.1, 0.2, 0.3]))
        out = insertion_mutation(ind, rng)
        kept = [g for g in out.genes if g in (0.1, 0.2, 0.3)]
        assert kept == [0.1, 0.2, 0.3]


class TestDeletion:
    def test_length_shrinks_by_one(self, rng):
        ind = Individual(genes=rng.random(5))
        out = deletion_mutation(ind, rng)
        assert len(out) == 4

    def test_minimum_length_one(self, rng):
        ind = Individual(genes=rng.random(1))
        assert deletion_mutation(ind, rng) is ind

    def test_remaining_genes_keep_order(self):
        rng = make_rng(4)
        ind = Individual(genes=np.array([0.1, 0.2, 0.3, 0.4]))
        out = deletion_mutation(ind, rng)
        original = [0.1, 0.2, 0.3, 0.4]
        it = iter(original)
        for g in out.genes:
            for o in it:
                if o == g:
                    break
            else:
                pytest.fail("deletion reordered the surviving genes")
