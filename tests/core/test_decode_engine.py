"""Tests for the incremental decode engine (DESIGN.md §9).

The engine's contract is *bit-identical* equivalence with the naive decode
path; these tests pin that down layer by layer (transition memoisation,
dirty-prefix resume, phenotype dedup, cache lifetime) plus the eviction /
pinning behaviour of the bounded tables.
"""

import numpy as np
import pytest

from repro.core import GAConfig, Individual, make_rng, run_ga
from repro.core.decode_engine import DecodeEngine, TransitionCache
from repro.core.encoding import DecodeCache, decode
from repro.core.fitness import FitnessFunction
from repro.core.mutation import deletion_mutation, insertion_mutation, uniform_reset_mutation
from repro.core.parallel import EvaluationContext, SerialEvaluator
from repro.domains import HanoiDomain, SlidingTileDomain


def assert_plans_identical(a, b):
    """Bit-identical DecodedPlan comparison (cost compared exactly, not approx)."""
    assert a.operations == b.operations
    assert a.state_keys == b.state_keys
    assert a.match_keys == b.match_keys
    assert a.final_state == b.final_state
    assert a.used_genes == b.used_genes
    assert a.goal_reached == b.goal_reached
    assert a.cost == b.cost  # exact: same additions in the same order


def make_context(domain, truncate=True, memoize=True):
    return EvaluationContext(
        domain=domain,
        start_state=domain.initial_state,
        fitness=FitnessFunction(domain),
        truncate_at_goal=truncate,
        memoize=memoize,
    )


class TestTransitionCacheEquivalence:
    @pytest.mark.parametrize("truncate", [True, False])
    def test_matches_naive_decode_hanoi(self, hanoi3, rng, truncate):
        cache = TransitionCache(hanoi3)
        for _ in range(30):
            genes = rng.random(int(rng.integers(1, 25)))
            naive = decode(genes, hanoi3, hanoi3.initial_state, truncate_at_goal=truncate)
            plan, reused = cache.decode(genes, hanoi3.initial_state, truncate_at_goal=truncate)
            assert reused == 0
            assert_plans_identical(plan, naive)
        assert cache.trans_hits > 0  # the cache actually warmed up

    def test_matches_naive_decode_with_decode_key_domain(self, tile3, rng):
        # The sliding tile overrides decode_key, exercising the separate
        # match_keys table.
        cache = TransitionCache(tile3)
        for _ in range(30):
            genes = rng.random(int(rng.integers(1, 30)))
            naive = decode(genes, tile3, tile3.initial_state)
            plan, _ = cache.decode(genes, tile3.initial_state)
            assert_plans_identical(plan, naive)
        # match_keys must be real decode keys, not aliased state keys
        assert cache._has_dkey

    def test_repeat_decode_hits_transition_table(self, hanoi3, rng):
        cache = TransitionCache(hanoi3)
        genes = rng.random(15)
        cache.decode(genes, hanoi3.initial_state)
        misses_after_first = cache.trans_misses
        cache.decode(genes, hanoi3.initial_state)
        assert cache.trans_misses == misses_after_first  # all hits second time
        assert cache.trans_hits >= 15 - 1

    def test_transitions_off_still_correct(self, hanoi3, rng):
        cache = TransitionCache(hanoi3)
        genes = rng.random(12)
        naive = decode(genes, hanoi3, hanoi3.initial_state)
        plan, _ = cache.decode(genes, hanoi3.initial_state, use_transitions=False)
        assert_plans_identical(plan, naive)
        assert cache.trans_hits == 0 and cache.trans_misses == 0

    def test_one_valid_lookup_per_consumed_gene(self, hanoi3, rng):
        # The engine walk must generate the same valid-table traffic as the
        # naive decoder (serial-vs-process metric equality depends on it).
        cache = TransitionCache(hanoi3)
        genes = rng.random(10)
        plan, _ = cache.decode(genes, hanoi3.initial_state, truncate_at_goal=False)
        assert cache.valid_hits + cache.valid_misses == plan.used_genes


class TestPrefixResume:
    def _parent_plan(self, domain, genes, truncate=True):
        return decode(genes, domain, domain.initial_state, truncate_at_goal=truncate)

    @pytest.mark.parametrize("truncate", [True, False])
    def test_resumed_child_matches_full_decode(self, hanoi3, rng, truncate):
        cache = TransitionCache(hanoi3)
        for _ in range(25):
            parent_genes = rng.random(20)
            parent_plan, _ = cache.decode(
                parent_genes, hanoi3.initial_state, truncate_at_goal=truncate
            )
            cut = int(rng.integers(1, 20))
            child_genes = np.concatenate([parent_genes[:cut], rng.random(10)])
            naive = decode(
                child_genes, hanoi3, hanoi3.initial_state, truncate_at_goal=truncate
            )
            plan, reused = cache.decode(
                child_genes,
                hanoi3.initial_state,
                truncate_at_goal=truncate,
                prefix_plan=parent_plan,
                dirty_from=cut,
            )
            assert_plans_identical(plan, naive)
            assert reused == min(cut, parent_plan.used_genes)

    def test_resume_on_decode_key_domain(self, tile3, rng):
        cache = TransitionCache(tile3)
        for _ in range(25):
            parent_genes = rng.random(24)
            parent_plan, _ = cache.decode(parent_genes, tile3.initial_state)
            cut = int(rng.integers(1, 24))
            child_genes = parent_genes.copy()
            child_genes[cut:] = rng.random(24 - cut)
            naive = decode(child_genes, tile3, tile3.initial_state)
            plan, _ = cache.decode(
                child_genes, tile3.initial_state, prefix_plan=parent_plan, dirty_from=cut
            )
            assert_plans_identical(plan, naive)

    def test_identical_plan_shortcut_returns_prefix_object(self, hanoi3, rng):
        # When the parent's decode stopped strictly before the dirty point,
        # the child's plan IS the parent's plan (trailing genes are inert).
        from repro.domains import optimal_hanoi_moves
        from repro.core.encoding import encode_operations

        optimal = optimal_hanoi_moves(3)
        genes = np.concatenate(
            [encode_operations(hanoi3, hanoi3.initial_state, optimal), np.full(10, 0.5)]
        )
        cache = TransitionCache(hanoi3)
        parent_plan, _ = cache.decode(genes, hanoi3.initial_state)
        assert parent_plan.used_genes == 7
        child_genes = genes.copy()
        child_genes[10:] = 0.123  # mutate only inert genes
        plan, reused = cache.decode(
            child_genes, hanoi3.initial_state, prefix_plan=parent_plan, dirty_from=10
        )
        assert plan is parent_plan
        assert reused == 7

    def test_evicted_state_falls_back_to_full_walk(self, hanoi3, rng):
        cache = TransitionCache(hanoi3)
        parent_genes = rng.random(15)
        parent_plan, _ = cache.decode(parent_genes, hanoi3.initial_state)
        cache.clear()  # drop every representative state
        child_genes = np.concatenate([parent_genes[:8], rng.random(7)])
        naive = decode(child_genes, hanoi3, hanoi3.initial_state)
        plan, reused = cache.decode(
            child_genes, hanoi3.initial_state, prefix_plan=parent_plan, dirty_from=8
        )
        assert_plans_identical(plan, naive)
        assert reused == 0
        assert cache.fallbacks >= 1

    def test_mismatched_start_key_ignores_prefix(self, hanoi3, rng):
        cache = TransitionCache(hanoi3)
        parent_genes = rng.random(10)
        parent_plan, _ = cache.decode(parent_genes, hanoi3.initial_state)
        other_start = hanoi3.apply(
            hanoi3.initial_state, list(hanoi3.valid_operations(hanoi3.initial_state))[0]
        )
        naive = decode(parent_genes, hanoi3, other_start)
        plan, reused = cache.decode(
            parent_genes, other_start, prefix_plan=parent_plan, dirty_from=5
        )
        assert reused == 0
        assert_plans_identical(plan, naive)


class TestEvictionAndPinning:
    def test_tiny_cache_still_correct(self, tile3, rng):
        # max_entries=2 forces constant wholesale resets; correctness must
        # survive and evictions must be counted.
        cache = TransitionCache(tile3, max_entries=2)
        for _ in range(10):
            genes = rng.random(20)
            naive = decode(genes, tile3, tile3.initial_state)
            plan, _ = cache.decode(genes, tile3.initial_state)
            assert_plans_identical(plan, naive)
        assert cache.valid_evictions > 0 or cache.trans_evictions > 0

    def test_pinned_start_survives_reset(self, hanoi3, rng):
        cache = TransitionCache(hanoi3, max_entries=2)
        key = hanoi3.state_key(hanoi3.initial_state)
        cache.pin(key, hanoi3.initial_state)
        for _ in range(5):
            cache.decode(rng.random(15), hanoi3.initial_state)
        assert cache.state_for(key) is not None  # pinned state never evicted

    def test_max_entries_validated(self, hanoi3):
        with pytest.raises(ValueError):
            TransitionCache(hanoi3, max_entries=0)


class TestDecodeCachePinning:
    def test_pinned_key_survives_reset(self, hanoi3):
        cache = DecodeCache(hanoi3, max_entries=2)
        s = hanoi3.initial_state
        k = hanoi3.state_key(s)
        cache.pin(k)
        cache.valid_operations(s, k)
        cache.valid_operations(s, "filler-key")
        cache.valid_operations(s, "overflow-key")  # forces a reset
        cache.valid_operations(s, k)
        assert cache.hits == 1  # pinned entry survived the reset
        assert cache.evictions >= 1  # the filler entry was dropped and counted


class TestDedupAndMemo:
    def test_duplicate_genomes_evaluated_once(self, hanoi3, rng):
        engine = DecodeEngine()
        engine.bind(make_context(hanoi3))
        fitness = FitnessFunction(hanoi3)
        genes = rng.random(12)
        r1 = engine.evaluate_genes(genes, fitness)
        r2 = engine.evaluate_genes(genes.copy(), fitness)
        assert engine.evals_skipped == 1
        assert r1 == r2  # same (decoded, fitness) objects from the memo

    def test_dedup_off_decodes_every_time(self, hanoi3, rng):
        engine = DecodeEngine(dedup=False)
        engine.bind(make_context(hanoi3))
        fitness = FitnessFunction(hanoi3)
        genes = rng.random(12)
        engine.evaluate_genes(genes, fitness)
        engine.evaluate_genes(genes, fitness)
        assert engine.evals_skipped == 0

    def test_memo_invalidated_on_start_state_change(self, hanoi3, rng):
        engine = DecodeEngine()
        ctx1 = make_context(hanoi3)
        engine.bind(ctx1)
        genes = rng.random(8)
        engine.evaluate_genes(genes, ctx1.fitness)
        mid = hanoi3.apply(
            hanoi3.initial_state, list(hanoi3.valid_operations(hanoi3.initial_state))[0]
        )
        ctx2 = EvaluationContext(
            domain=hanoi3, start_state=mid, fitness=FitnessFunction(hanoi3)
        )
        engine.bind(ctx2)
        decoded, _ = engine.evaluate_genes(genes, ctx2.fitness)
        naive = decode(genes, hanoi3, mid)
        assert_plans_identical(decoded, naive)  # memo did not serve stale plan
        assert engine.evals_skipped == 0

    def test_transition_tables_survive_rebind_same_domain(self, hanoi3, rng):
        engine = DecodeEngine()
        ctx = make_context(hanoi3)
        engine.bind(ctx)
        engine.evaluate_genes(rng.random(15), ctx.fitness)
        warm = engine.counters()["transition_cache_misses"]
        engine.bind(ctx)  # per-batch rebind must not clear the tables
        assert engine.counters()["transition_cache_misses"] == warm
        assert engine._cache._tbl  # still warm

    def test_tables_rebuilt_on_domain_change(self, hanoi3, tile3, rng):
        engine = DecodeEngine()
        engine.bind(make_context(hanoi3))
        engine.evaluate_genes(rng.random(10), FitnessFunction(hanoi3))
        ctx = make_context(tile3)
        engine.bind(ctx)
        decoded, _ = engine.evaluate_genes(rng.random(10), ctx.fitness)
        naive = decode(rng.random(0), tile3, tile3.initial_state)  # smoke: domain works
        assert decoded.state_keys[0] == tile3.state_key(tile3.initial_state)
        assert naive is not None

    def test_memo_bounded(self, hanoi3, rng):
        engine = DecodeEngine(memo_entries=4)
        ctx = make_context(hanoi3)
        engine.bind(ctx)
        for _ in range(10):
            engine.evaluate_genes(rng.random(6), ctx.fitness)
        assert len(engine._memo) <= 4
        assert engine.memo_evictions > 0


class TestOperatorLineage:
    """Crossover/mutation must hand children a *conservative* dirty_from."""

    def _evaluated(self, domain, rng, n=18):
        ind = Individual.random(n, rng)
        ind.decoded = decode(ind.genes, domain, domain.initial_state)
        return ind

    def test_crossover_children_carry_prefix(self, hanoi3, rng):
        from repro.core.crossover import random_crossover

        p1 = self._evaluated(hanoi3, rng)
        p2 = self._evaluated(hanoi3, rng)
        c1, c2 = random_crossover(p1, p2, rng, max_len=64)
        for child, parent in ((c1, p1), (c2, p2)):
            if child.dirty_from is None:
                continue  # empty-child fallback copies the parent
            assert child.prefix_plan is parent.decoded
            assert 0 < child.dirty_from <= child.genes.size
            # conservativeness: the prefix genes really are the parent's own
            np.testing.assert_array_equal(
                child.genes[: child.dirty_from], parent.genes[: child.dirty_from]
            )

    def test_unevaluated_parents_produce_plain_children(self, rng):
        from repro.core.crossover import random_crossover

        p1, p2 = Individual.random(10, rng), Individual.random(10, rng)
        c1, c2 = random_crossover(p1, p2, rng, max_len=64)
        assert c1.prefix_plan is None and c2.prefix_plan is None

    def test_uniform_mutation_tightens_dirty_from(self, hanoi3, rng):
        parent = self._evaluated(hanoi3, rng)
        for _ in range(20):
            child = uniform_reset_mutation(parent, 0.3, rng)
            if child is parent:
                continue  # nothing mutated
            assert child.prefix_plan is parent.decoded or child.prefix_plan is None
            if child.dirty_from is not None:
                np.testing.assert_array_equal(
                    child.genes[: child.dirty_from], parent.genes[: child.dirty_from]
                )

    def test_mutation_after_crossover_resumes_correctly(self, hanoi3, rng):
        # The end-to-end lineage check: crossover then mutation, and the
        # engine's prefix-resumed decode must still equal a naive decode.
        p1 = self._evaluated(hanoi3, rng)
        p2 = self._evaluated(hanoi3, rng)
        from repro.core.crossover import random_crossover

        cache = TransitionCache(hanoi3)
        for _ in range(20):
            c1, _ = random_crossover(p1, p2, rng, max_len=64)
            m = uniform_reset_mutation(c1, 0.5, rng)
            naive = decode(m.genes, hanoi3, hanoi3.initial_state)
            plan, _ = cache.decode(
                m.genes,
                hanoi3.initial_state,
                prefix_plan=m.prefix_plan,
                dirty_from=m.dirty_from,
            )
            assert_plans_identical(plan, naive)

    def test_insertion_and_deletion_carry_lineage(self, hanoi3, rng):
        parent = self._evaluated(hanoi3, rng)
        ins = insertion_mutation(parent, rng, max_len=64)
        if ins.dirty_from is not None:
            assert ins.prefix_plan is parent.decoded
            np.testing.assert_array_equal(
                ins.genes[: ins.dirty_from], parent.genes[: ins.dirty_from]
            )
        dele = deletion_mutation(parent, rng)
        if dele.dirty_from is not None:
            assert dele.prefix_plan is parent.decoded
            np.testing.assert_array_equal(
                dele.genes[: dele.dirty_from], parent.genes[: dele.dirty_from]
            )


class TestEvaluatorIntegration:
    def test_serial_engine_matches_naive_evaluator(self, hanoi3, rng):
        pop = [Individual.random(16, rng) for _ in range(20)]
        pop_naive = [ind.copy() for ind in pop]
        with SerialEvaluator() as ev:
            ev.evaluate(pop, make_context(hanoi3, memoize=True))
        with SerialEvaluator() as ev:
            ev.evaluate(pop_naive, make_context(hanoi3, memoize=False))
        for a, b in zip(pop, pop_naive):
            assert_plans_identical(a.decoded, b.decoded)
            assert a.fitness.total == b.fitness.total
            assert a.fitness.goal == b.fitness.goal

    def test_prefix_fields_cleared_after_evaluation(self, hanoi3, rng):
        parent = Individual.random(16, rng)
        parent.decoded = decode(parent.genes, hanoi3, hanoi3.initial_state)
        child = Individual(
            genes=parent.genes.copy(), dirty_from=8, prefix_plan=parent.decoded
        )
        with SerialEvaluator() as ev:
            ev.evaluate([child], make_context(hanoi3))
        assert child.prefix_plan is None and child.dirty_from is None
        assert child.is_evaluated

    def test_ga_runs_with_engine_disabled(self, hanoi3):
        cfg = GAConfig(
            population_size=12,
            generations=5,
            max_len=32,
            init_length=8,
            decode_engine=False,
        )
        result = run_ga(hanoi3, cfg, make_rng(7))
        assert result.generations_run >= 1
        assert result.best.fitness is not None

    def test_shared_engine_across_evaluators(self, hanoi3, rng):
        engine = DecodeEngine()
        ctx = make_context(hanoi3)
        pop = [Individual.random(12, rng) for _ in range(10)]
        with SerialEvaluator(engine=engine) as e1:
            e1.evaluate(pop, ctx)
        warm_misses = engine.counters()["transition_cache_misses"]
        pop2 = [ind.copy() for ind in pop]
        for ind in pop2:
            ind.decoded = None
            ind.fitness = None
        with SerialEvaluator(engine=engine) as e2:
            e2.evaluate(pop2, ctx)
        # Second evaluator reused the first one's tables: no new misses.
        assert engine.counters()["transition_cache_misses"] == warm_misses
