"""Portfolio engine: racing, cancellation, anytime API, deterministic replay."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GAConfig,
    GAPlanner,
    PortfolioSpec,
    StrategySpec,
    build_evaluators,
    canonical_events,
    default_portfolio,
    make_rng,
    parse_portfolio,
    run_portfolio,
)
from repro.core.parallel import SerialEvaluator
from repro.domains import HanoiDomain
from repro.obs import MemoryRecorder, MetricsRegistry, Tracer


def _ga(pop=24, gens=40, **kw):
    return GAConfig(
        population_size=pop, generations=gens, max_len=40, init_length=10, **kw
    )


def _spec(*strategies, **kw):
    kw.setdefault("interval", 3)
    kw.setdefault("migration_size", 2)
    return PortfolioSpec(strategies=tuple(strategies), **kw)


#: Three strategy mixes exercised by the determinism suite: GA-only (full
#: migration churn), GA + search race, and engine-heterogeneous GAs.
MIXES = {
    "ga-only": _spec(
        StrategySpec(kind="ga", ga=_ga()),
        StrategySpec(kind="ga", ga=_ga(pop=16, crossover="state-aware")),
        StrategySpec(kind="ga", ga=_ga(crossover="mixed", mutation_rate=0.05)),
    ),
    "ga-vs-search": _spec(
        StrategySpec(kind="ga", ga=_ga()),
        StrategySpec(kind="ga", ga=_ga(crossover="state-aware")),
        StrategySpec(kind="search", algorithm="gbfs", expansions_per_tick=8),
    ),
    "engines": _spec(
        StrategySpec(kind="ga", ga=_ga(batched=False, decode_engine=False)),
        StrategySpec(kind="ga", ga=_ga(vector_decode=False)),
        StrategySpec(kind="search", algorithm="astar", expansions_per_tick=16),
    ),
}


class TestSpecValidation:
    def test_strategy_requires_ga_config(self):
        with pytest.raises(ValueError, match="requires a GAConfig"):
            StrategySpec(kind="ga")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            StrategySpec(kind="annealing")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown search algorithm"):
            StrategySpec(kind="search", algorithm="dfs")

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError, match="at least one strategy"):
            PortfolioSpec(strategies=())

    def test_migration_validated_against_smallest_ga_island(self):
        small = StrategySpec(kind="ga", ga=_ga(pop=8))
        big = StrategySpec(kind="ga", ga=_ga(pop=100))
        with pytest.raises(ValueError, match="smallest GA island"):
            PortfolioSpec(strategies=(small, big), migration_size=8)
        # fine when below the smallest population
        PortfolioSpec(strategies=(small, big), migration_size=7)

    def test_labels(self):
        assert StrategySpec(kind="ga", ga=_ga()).label == "ga:random"
        assert StrategySpec(kind="search", algorithm="ucs").label == "search:ucs"
        assert StrategySpec(kind="search", name="mine").label == "mine"

    def test_parse_portfolio(self):
        spec = parse_portfolio("ga, ga:state-aware ,search:gbfs", _ga())
        assert [s.label for s in spec.strategies] == [
            "ga:random", "ga:state-aware", "search:gbfs",
        ]
        with pytest.raises(ValueError, match="unknown strategy"):
            parse_portfolio("ga,annealing", _ga())

    def test_default_portfolio_shape(self):
        spec = default_portfolio(_ga(), n_ga=2, search=("gbfs",))
        assert len(spec.strategies) == 3
        assert spec.ga_indices == (0, 1)


class TestRace:
    def test_search_island_wins_and_cancels_gas(self, hanoi5):
        res = run_portfolio(hanoi5, MIXES["ga-vs-search"], make_rng(7))
        assert res.solved
        assert res.winner == 2  # gbfs cracks hanoi-5 in a handful of ticks
        assert res.cancelled == 2
        assert res.first_solution_tick is not None
        assert res.first_solution_wall_s is not None
        # the winning plan actually reaches the goal
        state = hanoi5.initial_state
        for op in res.plan:
            state = hanoi5.apply(state, op)
        assert hanoi5.is_goal(state)

    def test_ga_only_portfolio_solves_hanoi3(self, hanoi3):
        res = run_portfolio(hanoi3, MIXES["ga-only"], make_rng(3))
        assert res.solved
        assert res.strategies[res.winner].startswith("ga:")
        assert res.histories[res.winner] is not None

    def test_no_thread_leak(self, hanoi3):
        before = threading.active_count()
        run_portfolio(hanoi3, MIXES["ga-vs-search"], make_rng(1))
        assert threading.active_count() == before

    def test_unsolved_portfolio_reports_best_effort(self, hanoi5):
        # Tiny budgets: nobody solves, but the GA best-so-far is reported.
        spec = _spec(
            StrategySpec(kind="ga", ga=_ga(gens=2)),
            StrategySpec(kind="ga", ga=_ga(gens=2, crossover="state-aware")),
            max_ticks=2,
        )
        res = run_portfolio(hanoi5, spec, make_rng(0))
        assert not res.solved
        assert res.winner is None and res.cancelled == 0
        assert res.best is not None and 0.0 <= res.best.goal_fitness < 1.0

    def test_grace_window_keeps_winner(self, hanoi5):
        spec = MIXES["ga-vs-search"].replace(grace_ms=50.0)
        res = run_portfolio(hanoi5, spec, make_rng(7))
        base = run_portfolio(hanoi5, MIXES["ga-vs-search"], make_rng(7))
        assert res.winner == base.winner
        assert res.plan == base.plan

    def test_incumbents_monotone_improving(self, hanoi5):
        res = run_portfolio(hanoi5, MIXES["ga-vs-search"], make_rng(11))
        keys = [inc.sort_key() for inc in res.incumbents]
        assert keys == sorted(keys)
        assert all(a < b for a, b in zip(keys, keys[1:]))


class TestDeterministicReplay:
    """`--portfolio-serial` must reproduce the concurrent run exactly."""

    @staticmethod
    def _run(domain, spec, seed, serial):
        recorder = MemoryRecorder()
        metrics = MetricsRegistry()
        result = run_portfolio(
            domain,
            spec,
            make_rng(seed),
            tracer=Tracer([recorder]),
            metrics=metrics,
            serial=serial,
        )
        return result, canonical_events(recorder.events), metrics.summary()

    @pytest.mark.parametrize("mix", sorted(MIXES))
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=2, deadline=None)
    def test_serial_reproduces_concurrent_run(self, mix, seed):
        domain = HanoiDomain(3)
        conc, conc_events, conc_metrics = self._run(domain, MIXES[mix], seed, False)
        ser, ser_events, ser_metrics = self._run(domain, MIXES[mix], seed, True)
        assert ser.winner == conc.winner
        assert ser.plan == conc.plan
        assert ser.first_solution_tick == conc.first_solution_tick
        assert ser.ticks_run == conc.ticks_run
        assert ser.rounds == conc.rounds
        assert ser.migrations == conc.migrations
        assert ser_events == conc_events
        assert ser_metrics["counters"] == conc_metrics["counters"]

    def test_event_stream_has_portfolio_vocabulary(self, hanoi3):
        _, events, _ = self._run(hanoi3, MIXES["ga-only"], 5, True)
        kinds = {e["kind"] for e in events}
        assert "generation" in kinds
        assert "incumbent" in kinds
        assert "portfolio-cancelled" in kinds or "island-velocity" in kinds


class TestEvaluatorLifetimes:
    def test_factory_failure_closes_built_evaluators(self, hanoi3):
        built = []

        def factory():
            if len(built) == 1:
                raise RuntimeError("boom")
            evaluator = SerialEvaluator()
            built.append(evaluator)
            return evaluator

        closed = []
        original = SerialEvaluator.close

        def tracking_close(self):
            closed.append(self)
            original(self)

        SerialEvaluator.close = tracking_close
        try:
            with pytest.raises(RuntimeError, match="boom"):
                run_portfolio(hanoi3, MIXES["ga-only"], make_rng(0), evaluator_factory=factory)
        finally:
            SerialEvaluator.close = original
        assert closed == built

    def test_mid_run_exception_closes_evaluators(self, hanoi3):
        closed = []

        class Exploding(SerialEvaluator):
            calls = 0

            def evaluate_buffer(self, buffer, context):
                Exploding.calls += 1
                if Exploding.calls > 4:
                    raise RuntimeError("mid-run failure")
                return super().evaluate_buffer(buffer, context)

            def evaluate(self, population, context):
                Exploding.calls += 1
                if Exploding.calls > 4:
                    raise RuntimeError("mid-run failure")
                return super().evaluate(population, context)

            def close(self):
                closed.append(self)
                super().close()

        with pytest.raises(RuntimeError, match="mid-run failure"):
            run_portfolio(
                hanoi3, MIXES["ga-only"], make_rng(0), evaluator_factory=Exploding
            )
        assert len(closed) == 3  # one per GA island, all closed on error

    def test_build_evaluators_helper(self):
        calls = []

        def factory():
            if len(calls) == 2:
                raise RuntimeError("third build fails")
            evaluator = SerialEvaluator()
            calls.append(evaluator)
            return evaluator

        with pytest.raises(RuntimeError, match="third build fails"):
            build_evaluators(factory, 3)


class TestPlannerIntegration:
    def test_portfolio_mode_outcome(self, hanoi3):
        planner = GAPlanner(
            hanoi3, _ga(), seed=3, portfolio=default_portfolio(_ga(), n_ga=2)
        )
        assert planner.mode == "portfolio"
        outcome = planner.solve()
        assert outcome.mode == "portfolio"
        assert outcome.solved
        assert outcome.incumbents
        assert outcome.incumbents[-1].solved
        assert outcome.plan_length == len(outcome.plan)

    def test_int_convenience_builds_default_portfolio(self, hanoi3):
        planner = GAPlanner(hanoi3, _ga(), seed=1, portfolio=2)
        assert planner.mode == "portfolio"
        assert len(planner.portfolio.strategies) == 3  # 2 GA + 1 search

    def test_on_incumbent_callback_streams(self, hanoi3):
        seen = []
        planner = GAPlanner(hanoi3, _ga(), seed=3, portfolio=2)
        outcome = planner.solve(on_incumbent=seen.append)
        assert tuple(seen) == outcome.incumbents

    def test_on_incumbent_rejected_outside_portfolio(self, hanoi3):
        planner = GAPlanner(hanoi3, _ga(), seed=3)
        with pytest.raises(ValueError, match="portfolio"):
            planner.solve(on_incumbent=lambda inc: None)

    def test_solve_stream_iterates_then_exposes_outcome(self, hanoi3):
        planner = GAPlanner(hanoi3, _ga(), seed=3, portfolio=2)
        stream = planner.solve_stream()
        seen = list(stream)
        assert seen
        assert stream.outcome.solved
        assert tuple(seen) == stream.outcome.incumbents

    def test_portfolio_serial_flag_same_outcome(self, hanoi3):
        spec = MIXES["ga-vs-search"]
        a = GAPlanner(hanoi3, _ga(), seed=9, portfolio=spec).solve()
        b = GAPlanner(
            hanoi3, _ga(), seed=9, portfolio=spec, portfolio_serial=True
        ).solve()
        assert a.plan == b.plan
        assert a.detail.winner == b.detail.winner

    def test_conflicting_sub_configs_rejected(self, hanoi3):
        with pytest.raises(ValueError, match="at most one"):
            GAPlanner(hanoi3, _ga(), seed=0, islands=2, portfolio=2)
