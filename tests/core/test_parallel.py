"""Tests for the evaluation strategies (serial and process-pool)."""

import numpy as np
import pytest

from repro.core import (
    EvaluationContext,
    FitnessFunction,
    Individual,
    ProcessPoolEvaluator,
    SerialEvaluator,
)
from repro.domains import HanoiDomain


def _context(domain):
    return EvaluationContext(domain, domain.initial_state, FitnessFunction(domain))


class TestSerialEvaluator:
    def test_fills_fitness_and_decoded(self, hanoi3, rng):
        pop = [Individual.random(10, rng) for _ in range(5)]
        SerialEvaluator().evaluate(pop, _context(hanoi3))
        assert all(ind.is_evaluated for ind in pop)

    def test_skips_already_evaluated(self, hanoi3, rng):
        pop = [Individual.random(10, rng)]
        ev = SerialEvaluator()
        ctx = _context(hanoi3)
        ev.evaluate(pop, ctx)
        marker = pop[0].fitness
        ev.evaluate(pop, ctx)
        assert pop[0].fitness is marker  # untouched

    def test_cache_reset_on_domain_change(self, rng):
        ev = SerialEvaluator()
        for domain in (HanoiDomain(3), HanoiDomain(4)):
            pop = [Individual.random(8, rng)]
            ev.evaluate(pop, _context(domain))
            assert pop[0].is_evaluated

    def test_context_manager(self, hanoi3, rng):
        with SerialEvaluator() as ev:
            pop = [Individual.random(5, rng)]
            ev.evaluate(pop, _context(hanoi3))
        assert pop[0].is_evaluated


class TestProcessPoolEvaluator:
    def test_matches_serial_results(self, hanoi3, rng):
        pop_a = [Individual.random(12, rng) for _ in range(8)]
        pop_b = [ind.copy() for ind in pop_a]
        for ind in pop_b:
            ind.decoded = None
            ind.fitness = None
        ctx = _context(hanoi3)
        SerialEvaluator().evaluate(pop_a, ctx)
        with ProcessPoolEvaluator(ctx, processes=2, chunk_size=3) as ev:
            ev.evaluate(pop_b, ctx)
        for a, b in zip(pop_a, pop_b):
            assert a.fitness.total == pytest.approx(b.fitness.total)
            assert a.decoded.operations == b.decoded.operations

    def test_rejects_foreign_context(self, hanoi3, rng):
        ctx = _context(hanoi3)
        other = _context(HanoiDomain(4))
        with ProcessPoolEvaluator(ctx, processes=1) as ev:
            with pytest.raises(ValueError, match="bound to the context"):
                ev.evaluate([Individual.random(5, rng)], other)

    def test_empty_and_already_evaluated(self, hanoi3, rng):
        ctx = _context(hanoi3)
        pop = [Individual.random(5, rng)]
        SerialEvaluator().evaluate(pop, ctx)
        with ProcessPoolEvaluator(ctx, processes=1) as ev:
            ev.evaluate([], ctx)
            ev.evaluate(pop, ctx)  # nothing pending
        assert pop[0].is_evaluated

    def test_bad_chunk_size(self, hanoi3):
        with pytest.raises(ValueError):
            ProcessPoolEvaluator(_context(hanoi3), chunk_size=0)
