"""Tests for the GAPlanner facade."""

import pytest

from repro.core import GAConfig, GAPlanner, MultiPhaseConfig
from repro.domains import HanoiDomain, optimal_hanoi_moves


class TestGAPlanner:
    def test_single_phase_outcome(self, hanoi3):
        cfg = GAConfig(population_size=50, generations=80, max_len=35, init_length=7)
        outcome = GAPlanner(hanoi3, cfg, seed=0).solve()
        assert outcome.solved
        assert outcome.plan_length == len(outcome.plan)
        assert outcome.plan_cost == pytest.approx(outcome.plan_length)  # unit costs
        assert outcome.goal_fitness == pytest.approx(1.0)
        final = hanoi3.execute(outcome.plan)
        assert hanoi3.is_goal(final)

    def test_multiphase_by_int(self, hanoi3):
        cfg = GAConfig(population_size=40, generations=30, max_len=35, init_length=7)
        outcome = GAPlanner(hanoi3, cfg, multiphase=5, seed=1).solve()
        assert outcome.solved
        assert outcome.generations % 30 == 0  # full phases

    def test_multiphase_by_config(self, hanoi3):
        mp = MultiPhaseConfig(
            max_phases=2,
            phase=GAConfig(
                population_size=20, generations=5, max_len=35, init_length=7,
                stop_on_goal=False,
            ),
        )
        cfg = GAConfig(population_size=20, generations=5, max_len=35, init_length=7)
        outcome = GAPlanner(hanoi3, cfg, multiphase=mp, seed=2).solve()
        assert outcome.generations <= 10

    def test_seeding_produces_instant_solution(self, hanoi3):
        cfg = GAConfig(population_size=20, generations=30, max_len=35, init_length=7)
        planner = GAPlanner(hanoi3, cfg, seed=3)
        seeds = planner.seed_individuals([optimal_hanoi_moves(3)])
        outcome = planner.solve(seeds=seeds)
        assert outcome.solved
        assert outcome.detail.solved_at_generation == 0

    def test_seeds_rejected_in_multiphase(self, hanoi3):
        cfg = GAConfig(population_size=20, generations=5, max_len=35, init_length=7)
        planner = GAPlanner(hanoi3, cfg, multiphase=2, seed=4)
        seeds = planner.seed_individuals([optimal_hanoi_moves(3)], jitter=False)
        with pytest.raises(ValueError, match="single-phase"):
            planner.solve(seeds=seeds)

    def test_custom_start_state(self, hanoi3):
        cfg = GAConfig(population_size=20, generations=10, max_len=35, init_length=7)
        outcome = GAPlanner(hanoi3, cfg, seed=5).solve(start_state=((1,), (3, 2), ()))
        assert outcome.solved
