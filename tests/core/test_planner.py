"""Tests for the GAPlanner facade."""

import pytest

from repro.core import (
    GAConfig,
    GAPlanner,
    GAResult,
    IslandConfig,
    IslandResult,
    MultiPhaseConfig,
    MultiPhaseResult,
    PlanningOutcome,
    SerialEvaluator,
)
from repro.domains import optimal_hanoi_moves


class TestGAPlanner:
    def test_single_phase_outcome(self, hanoi3):
        cfg = GAConfig(population_size=50, generations=80, max_len=35, init_length=7)
        outcome = GAPlanner(hanoi3, cfg, seed=0).solve()
        assert outcome.solved
        assert outcome.plan_length == len(outcome.plan)
        assert outcome.plan_cost == pytest.approx(outcome.plan_length)  # unit costs
        assert outcome.goal_fitness == pytest.approx(1.0)
        final = hanoi3.execute(outcome.plan)
        assert hanoi3.is_goal(final)

    def test_multiphase_by_int(self, hanoi3):
        cfg = GAConfig(population_size=40, generations=30, max_len=35, init_length=7)
        outcome = GAPlanner(hanoi3, cfg, multiphase=5, seed=1).solve()
        assert outcome.solved
        assert outcome.generations % 30 == 0  # full phases

    def test_multiphase_by_config(self, hanoi3):
        mp = MultiPhaseConfig(
            max_phases=2,
            phase=GAConfig(
                population_size=20, generations=5, max_len=35, init_length=7,
                stop_on_goal=False,
            ),
        )
        cfg = GAConfig(population_size=20, generations=5, max_len=35, init_length=7)
        outcome = GAPlanner(hanoi3, cfg, multiphase=mp, seed=2).solve()
        assert outcome.generations <= 10

    def test_seeding_produces_instant_solution(self, hanoi3):
        cfg = GAConfig(population_size=20, generations=30, max_len=35, init_length=7)
        planner = GAPlanner(hanoi3, cfg, seed=3)
        seeds = planner.seed_individuals([optimal_hanoi_moves(3)])
        outcome = planner.solve(seeds=seeds)
        assert outcome.solved
        assert outcome.detail.solved_at_generation == 0

    def test_seeds_rejected_in_multiphase(self, hanoi3):
        cfg = GAConfig(population_size=20, generations=5, max_len=35, init_length=7)
        planner = GAPlanner(hanoi3, cfg, multiphase=2, seed=4)
        seeds = planner.seed_individuals([optimal_hanoi_moves(3)], jitter=False)
        with pytest.raises(ValueError, match="single-phase"):
            planner.solve(seeds=seeds)

    def test_custom_start_state(self, hanoi3):
        cfg = GAConfig(population_size=20, generations=10, max_len=35, init_length=7)
        outcome = GAPlanner(hanoi3, cfg, seed=5).solve(start_state=((1,), (3, 2), ()))
        assert outcome.solved


def _assert_uniform_outcome(outcome: PlanningOutcome, mode: str, domain) -> None:
    """Every mode fills the same fields with the same semantics."""
    assert outcome.mode == mode
    assert isinstance(outcome.plan, tuple)
    assert outcome.plan_length == len(outcome.plan)
    assert outcome.plan_cost == pytest.approx(domain.plan_cost(outcome.plan))
    assert 0.0 <= outcome.goal_fitness <= 1.0
    assert outcome.solved == (outcome.goal_fitness == pytest.approx(1.0))
    assert outcome.generations > 0
    assert outcome.elapsed_seconds >= 0.0
    if outcome.solved:
        assert domain.is_goal(domain.execute(outcome.plan))


class TestModeDispatch:
    """The unified GAPlanner surface: one outcome shape for all three modes."""

    def _cfg(self, **overrides):
        base = dict(
            population_size=40, generations=40, max_len=35, init_length=7
        )
        base.update(overrides)
        return GAConfig(**base)

    def test_all_modes_return_uniform_outcome(self, hanoi3):
        single = GAPlanner(hanoi3, self._cfg(), seed=0).solve()
        multi = GAPlanner(hanoi3, self._cfg(generations=20), multiphase=4, seed=0).solve()
        isl = GAPlanner(hanoi3, self._cfg(generations=20), islands=3, seed=0).solve()
        _assert_uniform_outcome(single, "single", hanoi3)
        _assert_uniform_outcome(multi, "multiphase", hanoi3)
        _assert_uniform_outcome(isl, "islands", hanoi3)
        assert isinstance(single.detail, GAResult)
        assert isinstance(multi.detail, MultiPhaseResult)
        assert isinstance(isl.detail, IslandResult)
        # Field sets are literally identical across modes.
        assert set(single.__dict__) == set(multi.__dict__) == set(isl.__dict__)

    def test_islands_by_config(self, hanoi3):
        cfg = IslandConfig(
            n_islands=2, migration_interval=5, migration_size=1,
            island=self._cfg(generations=10, stop_on_goal=False),
        )
        outcome = GAPlanner(hanoi3, self._cfg(), islands=cfg, seed=1).solve()
        assert outcome.mode == "islands"
        # generations is total search effort: per-island generations summed.
        assert outcome.generations == outcome.detail.generations_run * 2

    def test_explicit_mode_builds_default_configs(self, hanoi3):
        multi = GAPlanner(hanoi3, self._cfg(generations=5), mode="multiphase", seed=2)
        assert multi.mode == "multiphase"
        assert multi.multiphase is not None
        assert multi.multiphase.phase.stop_on_goal is False
        isl = GAPlanner(hanoi3, self._cfg(), mode="islands", seed=2)
        assert isl.mode == "islands"
        assert isl.islands is not None
        assert isl.islands.island == self._cfg()

    def test_explicit_single_mode_discards_subconfigs(self, hanoi3):
        planner = GAPlanner(hanoi3, self._cfg(), multiphase=3, mode="single", seed=3)
        assert planner.mode == "single"
        assert planner.multiphase is None

    def test_conflicting_subconfigs_rejected(self, hanoi3):
        with pytest.raises(ValueError, match="at most one"):
            GAPlanner(hanoi3, self._cfg(), multiphase=2, islands=2)

    def test_unknown_mode_rejected(self, hanoi3):
        with pytest.raises(ValueError, match="mode must be one of"):
            GAPlanner(hanoi3, self._cfg(), mode="parallel")

    def test_seeds_rejected_in_islands(self, hanoi3):
        planner = GAPlanner(hanoi3, self._cfg(), islands=2, seed=4)
        seeds = planner.seed_individuals([optimal_hanoi_moves(3)], jitter=False)
        with pytest.raises(ValueError, match="single-phase"):
            planner.solve(seeds=seeds)


class TestEvaluatorSpec:
    def _cfg(self):
        return GAConfig(
            population_size=10, generations=3, max_len=35, init_length=7,
            stop_on_goal=False,
        )

    def test_serial_aliases(self, hanoi3):
        for spec in (None, "serial"):
            planner = GAPlanner(hanoi3, self._cfg(), seed=0, evaluator=spec)
            assert planner._evaluator_factory is None

    def test_factory_evaluators_are_closed(self, hanoi3):
        created = []

        def factory():
            evaluator = SerialEvaluator()
            evaluator.closed = False
            original_close = evaluator.close
            def close():
                evaluator.closed = True
                original_close()
            evaluator.close = close
            created.append(evaluator)
            return evaluator

        for kwargs in (dict(), dict(multiphase=2), dict(islands=2)):
            created.clear()
            GAPlanner(hanoi3, self._cfg(), seed=5, evaluator=factory, **kwargs).solve()
            assert created, kwargs
            assert all(e.closed for e in created), kwargs

    def test_instance_rejected(self, hanoi3):
        with pytest.raises(TypeError, match="factory"):
            GAPlanner(hanoi3, self._cfg(), evaluator=SerialEvaluator())

    def test_unknown_spec_rejected(self, hanoi3):
        with pytest.raises(ValueError, match="evaluator spec"):
            GAPlanner(hanoi3, self._cfg(), evaluator="threads")
