"""Tests for the fitness function (paper equations 2 and 4)."""

import numpy as np
import pytest

from repro.core import FitnessFunction, cost_fitness, decode
from repro.core.encoding import DecodedPlan, encode_operations
from repro.domains import HanoiDomain, optimal_hanoi_moves


class TestCostFitness:
    def test_empty_plan_scores_one(self):
        assert cost_fitness(0.0) == 1.0

    def test_monotone_decreasing(self):
        values = [cost_fitness(c) for c in (0, 1, 5, 100)]
        assert values == sorted(values, reverse=True)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            cost_fitness(-1.0)

    def test_unit_cost_formula(self):
        assert cost_fitness(9.0) == pytest.approx(0.1)


class TestFitnessFunction:
    def _decoded(self, domain, ops):
        genes = encode_operations(domain, domain.initial_state, ops)
        return decode(genes, domain, domain.initial_state, truncate_at_goal=False)

    def test_weights_validated(self):
        domain = HanoiDomain(3)
        with pytest.raises(ValueError):
            FitnessFunction(domain, goal_weight=0.8, cost_weight=0.1)
        with pytest.raises(ValueError):
            FitnessFunction(domain, goal_weight=1.2, cost_weight=-0.2)

    def test_weighted_combination(self):
        domain = HanoiDomain(3)
        fn = FitnessFunction(domain, goal_weight=0.9, cost_weight=0.1)
        d = self._decoded(domain, optimal_hanoi_moves(3))
        result = fn(d)
        assert result.goal == pytest.approx(1.0)
        assert result.cost == pytest.approx(1.0 / 8.0)
        assert result.total == pytest.approx(0.9 * 1.0 + 0.1 / 8.0)
        assert result.goal_reached
        assert result.match == 1.0

    def test_empty_plan_fitness(self):
        domain = HanoiDomain(3)
        fn = FitnessFunction(domain)
        d = self._decoded(domain, [])
        result = fn(d)
        assert result.goal == pytest.approx(0.0)  # nothing on stake B
        assert result.cost == 1.0
        assert not result.goal_reached

    def test_match_fitness_always_one(self, rng):
        domain = HanoiDomain(4)
        fn = FitnessFunction(domain)
        d = decode(rng.random(20), domain, domain.initial_state)
        assert fn(d).match == 1.0

    def test_all_goal_weight(self):
        domain = HanoiDomain(3)
        fn = FitnessFunction(domain, goal_weight=1.0, cost_weight=0.0)
        d = self._decoded(domain, optimal_hanoi_moves(3))
        assert fn(d).total == pytest.approx(1.0)

    def test_domain_fitness_out_of_range_detected(self):
        class Bad(HanoiDomain):
            def goal_fitness(self, state):
                return 2.0

        fn = FitnessFunction(Bad(3))
        domain = HanoiDomain(3)
        d = self._decoded(domain, [])
        with pytest.raises(ValueError, match="outside"):
            fn(d)
