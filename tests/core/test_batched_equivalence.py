"""Batched-vs-object equivalence: whole GA trajectories must be bit-identical.

``GAConfig.batched`` switches the generation step between the
structure-of-arrays :class:`~repro.core.popbuffer.PopulationBuffer` engine
and the historical list-of-Individual path.  The batched engine replays the
object path's RNG draws exactly (DESIGN.md §11), so the switch must be
*unobservable* in results: same seed → same per-generation statistics, same
best genome, fitness and decoded plan, to the last bit — serial or process
pool, shared-memory dispatch on or off, single-phase or multi-phase.
Hypothesis drives random configurations across all three crossovers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GAConfig,
    IslandConfig,
    MultiPhaseConfig,
    make_rng,
    run_ga,
    run_islands,
    run_multiphase,
)
from repro.core.parallel import ProcessPoolEvaluator, SerialEvaluator
from repro.domains import HanoiDomain, SlidingTileDomain


def run_pair(domain, config, seed, on_evaluator=None, off_evaluator=None):
    """Run the same GA batched and unbatched; return both results."""
    on = run_ga(
        domain, config.replace(batched=True), make_rng(seed), evaluator=on_evaluator
    )
    off = run_ga(
        domain, config.replace(batched=False), make_rng(seed), evaluator=off_evaluator
    )
    return on, off


def assert_results_identical(on, off):
    assert on.history.generations == off.history.generations  # exact dataclass ==
    assert on.generations_run == off.generations_run
    assert on.solved_at_generation == off.solved_at_generation
    np.testing.assert_array_equal(on.best.genes, off.best.genes)
    assert on.best.fitness.total == off.best.fitness.total
    assert on.best.fitness.goal == off.best.fitness.goal
    assert on.best.decoded.operations == off.best.decoded.operations
    assert on.best.decoded.cost == off.best.decoded.cost


configs = st.fixed_dictionaries(
    {
        "population_size": st.integers(min_value=6, max_value=14),
        "generations": st.integers(min_value=2, max_value=5),
        "crossover": st.sampled_from(["random", "state-aware", "mixed"]),
        "crossover_rate": st.floats(min_value=0.0, max_value=1.0),
        "mutation_rate": st.floats(min_value=0.0, max_value=0.3),
        "elitism": st.integers(min_value=0, max_value=2),
        "truncate_at_goal": st.booleans(),
        "seed": st.integers(min_value=0, max_value=2**31),
    }
)


class TestBatchedTrajectoryEquivalence:
    @given(configs)
    @settings(max_examples=12, deadline=None)
    def test_hanoi_random_configs(self, params):
        seed = params.pop("seed")
        config = GAConfig(max_len=32, init_length=(4, 16), **params)
        on, off = run_pair(HanoiDomain(3), config, seed)
        assert_results_identical(on, off)

    @given(configs)
    @settings(max_examples=8, deadline=None)
    def test_tile_random_configs(self, params):
        # The sliding tile has abundant state-aware cut matches, so this
        # exercises the plan-carrying (keep_plans) buffer path hard.
        seed = params.pop("seed")
        config = GAConfig(max_len=40, init_length=(6, 20), **params)
        on, off = run_pair(SlidingTileDomain(3), config, seed)
        assert_results_identical(on, off)

    @pytest.mark.parametrize("crossover", ["random", "state-aware", "mixed"])
    def test_longer_run_per_crossover(self, crossover):
        config = GAConfig(
            population_size=20,
            generations=15,
            max_len=64,
            init_length=16,
            crossover=crossover,
        )
        on, off = run_pair(HanoiDomain(4), config, 424242)
        assert_results_identical(on, off)

    def test_naive_decode_also_identical(self):
        # Batching must not depend on the incremental decode engine.
        config = GAConfig(
            population_size=12, generations=6, max_len=32, init_length=10,
            decode_engine=False,
        )
        on, off = run_pair(HanoiDomain(3), config, 31337)
        assert_results_identical(on, off)


class TestProcessPoolBatchedEquivalence:
    @pytest.mark.parametrize("crossover", ["random", "mixed"])
    @pytest.mark.parametrize("shm", [True, False])
    def test_pool_matches_object_serial(self, crossover, shm):
        domain = HanoiDomain(3)
        config = GAConfig(
            population_size=16,
            generations=6,
            max_len=32,
            init_length=10,
            crossover=crossover,
        )
        with ProcessPoolEvaluator(processes=2, shm=shm) as pool:
            on, off = run_pair(
                domain, config, 7, on_evaluator=pool, off_evaluator=SerialEvaluator()
            )
        assert_results_identical(on, off)

    def test_shm_on_off_identical(self):
        domain = HanoiDomain(3)
        config = GAConfig(
            population_size=16, generations=5, max_len=32, init_length=10
        )
        with ProcessPoolEvaluator(processes=2, shm=True) as a:
            with ProcessPoolEvaluator(processes=2, shm=False) as b:
                on = run_ga(domain, config, make_rng(11), evaluator=a)
                off = run_ga(domain, config, make_rng(11), evaluator=b)
        assert_results_identical(on, off)


class TestMultiphaseBatchedEquivalence:
    def test_multiphase_batched_on_off(self):
        domain = HanoiDomain(4)
        base = GAConfig(population_size=16, generations=8, max_len=40, init_length=12)
        on = run_multiphase(
            domain,
            MultiPhaseConfig(phase=base.replace(batched=True), max_phases=3),
            make_rng(99),
        )
        off = run_multiphase(
            domain,
            MultiPhaseConfig(phase=base.replace(batched=False), max_phases=3),
            make_rng(99),
        )
        assert on.plan == off.plan
        assert on.goal_fitness == off.goal_fitness
        assert on.solved == off.solved
        assert on.total_generations == off.total_generations
        for a, b in zip(on.phases, off.phases):
            assert a.result.history.generations == b.result.history.generations


class TestIslandsBatchedEquivalence:
    def test_islands_batched_on_off(self):
        domain = HanoiDomain(3)
        base = GAConfig(
            population_size=10, generations=12, max_len=32, init_length=10
        )
        def island_config(batched):
            return IslandConfig(
                n_islands=3,
                migration_interval=4,
                migration_size=2,
                island=base.replace(batched=batched),
            )

        on = run_islands(domain, island_config(True), make_rng(5))
        off = run_islands(domain, island_config(False), make_rng(5))
        assert on.best.sort_key() == off.best.sort_key()
        np.testing.assert_array_equal(on.best.genes, off.best.genes)
        assert on.solved_at_generation == off.solved_at_generation
        assert on.migrations == off.migrations
        for ha, hb in zip(on.histories, off.histories):
            assert ha.generations == hb.generations
