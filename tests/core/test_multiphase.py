"""Tests for the multi-phase GA driver."""

import numpy as np
import pytest

from repro.core import GAConfig, MultiPhaseConfig, make_rng, run_multiphase
from repro.domains import HanoiDomain


def _phase_cfg(**kw):
    base = dict(
        population_size=40, generations=30, max_len=35, init_length=7, stop_on_goal=False
    )
    base.update(kw)
    return GAConfig(**base)


class TestMultiPhase:
    def test_solves_hanoi3(self, hanoi3):
        mp = MultiPhaseConfig(max_phases=5, phase=_phase_cfg())
        result = run_multiphase(hanoi3, mp, make_rng(0))
        assert result.solved
        assert result.solved_in_phase is not None
        final = hanoi3.execute(result.plan)
        assert hanoi3.is_goal(final)

    def test_stops_after_solving_phase(self, hanoi3):
        mp = MultiPhaseConfig(max_phases=5, phase=_phase_cfg())
        result = run_multiphase(hanoi3, mp, make_rng(1))
        assert result.solved
        assert result.n_phases == result.solved_in_phase

    def test_phases_chain_states(self, hanoi3):
        mp = MultiPhaseConfig(max_phases=3, phase=_phase_cfg(generations=3, population_size=10))
        result = run_multiphase(hanoi3, mp, make_rng(2))
        for earlier, later in zip(result.phases, result.phases[1:]):
            assert later.start_state == earlier.final_state

    def test_plan_is_concatenation(self, hanoi3):
        mp = MultiPhaseConfig(max_phases=3, phase=_phase_cfg(generations=3, population_size=10))
        result = run_multiphase(hanoi3, mp, make_rng(3))
        concat = tuple(op for rec in result.phases for op in rec.plan)
        assert result.plan == concat

    def test_generation_accounting_full_phases(self, hanoi3):
        mp = MultiPhaseConfig(max_phases=2, phase=_phase_cfg(generations=7, population_size=10))
        result = run_multiphase(hanoi3, mp, make_rng(4))
        assert result.total_generations == 7 * result.n_phases

    def test_early_stop_in_phase(self, hanoi3):
        mp = MultiPhaseConfig(
            max_phases=5, phase=_phase_cfg(generations=100), early_stop_in_phase=True
        )
        result = run_multiphase(hanoi3, mp, make_rng(5))
        if result.solved:
            # With early stopping, the solving phase may use < 100 gens.
            assert result.total_generations <= 100 * result.n_phases

    def test_respects_max_phases(self, rng):
        # 7-disk Hanoi with a tiny budget will not solve; all phases run.
        domain = HanoiDomain(7)
        mp = MultiPhaseConfig(
            max_phases=3,
            phase=GAConfig(
                population_size=10, generations=2, max_len=130, init_length=16,
                stop_on_goal=False,
            ),
        )
        result = run_multiphase(domain, mp, rng)
        assert not result.solved
        assert result.n_phases == 3
        assert result.solved_in_phase is None

    def test_on_phase_callback(self, hanoi3):
        seen = []
        mp = MultiPhaseConfig(max_phases=2, phase=_phase_cfg(generations=2, population_size=10))
        run_multiphase(hanoi3, mp, make_rng(6), on_phase=seen.append)
        assert [p.index for p in seen] == list(range(1, len(seen) + 1))

    def test_reproducible(self, hanoi3):
        mp = MultiPhaseConfig(max_phases=3, phase=_phase_cfg())
        a = run_multiphase(hanoi3, mp, make_rng(42))
        b = run_multiphase(hanoi3, mp, make_rng(42))
        assert a.plan == b.plan
        assert a.goal_fitness == b.goal_fitness

    def test_goal_fitness_matches_final_state(self, hanoi3):
        mp = MultiPhaseConfig(max_phases=2, phase=_phase_cfg(generations=3, population_size=10))
        result = run_multiphase(hanoi3, mp, make_rng(7))
        assert result.goal_fitness == pytest.approx(
            hanoi3.goal_fitness(result.final_state)
        )

    def test_start_state_override(self, hanoi3):
        near_goal = ((1,), (3, 2), ())
        mp = MultiPhaseConfig(max_phases=2, phase=_phase_cfg(population_size=10, generations=2))
        result = run_multiphase(hanoi3, mp, make_rng(8), start_state=near_goal)
        assert result.solved
        assert result.solved_in_phase == 1
