"""Tests for the island-model GA."""

import numpy as np
import pytest

from repro.core import GAConfig, IslandConfig, make_rng, run_islands
from repro.domains import HanoiDomain


def _cfg(**kw):
    island = dict(
        population_size=20, generations=30, max_len=35, init_length=7,
        stop_on_goal=True,
    )
    island.update(kw.pop("island_kw", {}))
    base = dict(n_islands=3, migration_interval=5, migration_size=2, island=GAConfig(**island))
    base.update(kw)
    return IslandConfig(**base)


class TestConfigValidation:
    def test_requires_island_config(self):
        with pytest.raises(ValueError, match="island config"):
            IslandConfig(n_islands=2, island=None)

    def test_minimum_islands(self):
        with pytest.raises(ValueError):
            _cfg(n_islands=1)

    def test_migration_bounds(self):
        with pytest.raises(ValueError):
            _cfg(migration_interval=0)
        with pytest.raises(ValueError):
            _cfg(migration_size=0)
        with pytest.raises(ValueError):
            _cfg(migration_size=20)  # == island population


class TestRunIslands:
    def test_solves_hanoi3(self, hanoi3):
        result = run_islands(hanoi3, _cfg(), make_rng(0))
        assert result.solved
        final = hanoi3.execute(result.best.decoded.operations)
        assert hanoi3.is_goal(final)

    def test_population_sizes_preserved_across_migration(self, hanoi3):
        cfg = _cfg(island_kw={"stop_on_goal": False, "generations": 12})
        # Patch through a run and verify sizes via histories: every island
        # records its full generation count with a constant population.
        result = run_islands(hanoi3, cfg, make_rng(1))
        for history in result.histories:
            assert len(history) == 12

    def test_early_stop_on_goal(self, hanoi3):
        result = run_islands(hanoi3, _cfg(), make_rng(2))
        if result.solved:
            assert result.generations_run <= 30

    def test_migration_counter(self, hanoi3):
        cfg = _cfg(island_kw={"stop_on_goal": False, "generations": 11}, migration_interval=5)
        result = run_islands(hanoi3, cfg, make_rng(3))
        assert result.migrations == 2  # after generations 5 and 10

    def test_reproducible(self, hanoi3):
        a = run_islands(hanoi3, _cfg(), make_rng(42))
        b = run_islands(hanoi3, _cfg(), make_rng(42))
        assert np.array_equal(a.best.genes, b.best.genes)
        assert a.best_island == b.best_island

    def test_best_island_index_valid(self, hanoi3):
        result = run_islands(hanoi3, _cfg(), make_rng(4))
        assert 0 <= result.best_island < 3

    def test_histories_one_per_island(self, hanoi3):
        result = run_islands(hanoi3, _cfg(), make_rng(5))
        assert len(result.histories) == 3
