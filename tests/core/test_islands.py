"""Tests for the island-model GA."""

import numpy as np
import pytest

from repro.core import GAConfig, IslandConfig, make_rng, run_islands
from repro.core.parallel import SerialEvaluator
from repro.domains import HanoiDomain


def _cfg(**kw):
    island = dict(
        population_size=20, generations=30, max_len=35, init_length=7,
        stop_on_goal=True,
    )
    island.update(kw.pop("island_kw", {}))
    base = dict(n_islands=3, migration_interval=5, migration_size=2, island=GAConfig(**island))
    base.update(kw)
    return IslandConfig(**base)


class TestConfigValidation:
    def test_requires_island_config(self):
        with pytest.raises(ValueError, match="island config"):
            IslandConfig(n_islands=2, island=None)

    def test_minimum_islands(self):
        with pytest.raises(ValueError):
            _cfg(n_islands=1)

    def test_migration_bounds(self):
        with pytest.raises(ValueError):
            _cfg(migration_interval=0)
        with pytest.raises(ValueError):
            _cfg(migration_size=0)
        with pytest.raises(ValueError):
            _cfg(migration_size=20)  # == island population


class TestPerIslandConfigs:
    def _hetero(self, *pops, migration_size=2):
        per = tuple(
            GAConfig(
                population_size=p, generations=12, max_len=35, init_length=7,
                stop_on_goal=False,
            )
            for p in pops
        )
        return IslandConfig(
            n_islands=len(per), migration_interval=5,
            migration_size=migration_size, island=per[0], per_island=per,
        )

    def test_per_island_length_must_match(self):
        cfg = GAConfig(population_size=20, generations=10, max_len=35, init_length=7)
        with pytest.raises(ValueError, match="per_island must list 3"):
            IslandConfig(n_islands=3, island=cfg, per_island=(cfg, cfg))

    def test_migration_validated_against_smallest_island(self):
        # 8-strong island cannot donate/absorb 8 migrants even though the
        # base island config is much larger.
        with pytest.raises(ValueError, match="smallest island population"):
            self._hetero(40, 8, 40, migration_size=8)
        self._hetero(40, 8, 40, migration_size=7)  # below the floor: fine

    def test_heterogeneous_run_preserves_island_sizes(self, hanoi3):
        cfg = self._hetero(24, 12, 18)
        result = run_islands(hanoi3, cfg, make_rng(6))
        assert len(result.histories) == 3
        for history in result.histories:
            assert len(history) == 12

    def test_heterogeneous_reproducible(self, hanoi3):
        cfg = self._hetero(24, 12, 18)
        a = run_islands(hanoi3, cfg, make_rng(7))
        b = run_islands(hanoi3, cfg, make_rng(7))
        assert np.array_equal(a.best.genes, b.best.genes)
        assert a.best_island == b.best_island


class TestEvaluatorLifetimes:
    def test_factory_failure_closes_built_evaluators(self, hanoi3):
        built, closed = [], []

        def factory():
            if len(built) == 2:
                raise RuntimeError("third evaluator fails")
            evaluator = SerialEvaluator()
            evaluator.close = lambda ev=evaluator: closed.append(ev)
            built.append(evaluator)
            return evaluator

        with pytest.raises(RuntimeError, match="third evaluator fails"):
            run_islands(hanoi3, _cfg(), make_rng(0), evaluator_factory=factory)
        assert closed == built  # both pre-built evaluators released

    def test_mid_migration_exception_closes_all_evaluators(self, hanoi3):
        closed = []

        class Exploding(SerialEvaluator):
            calls = 0

            def evaluate_buffer(self, buffer, context):
                Exploding.calls += 1
                if Exploding.calls > 4:
                    raise RuntimeError("mid-run failure")
                return super().evaluate_buffer(buffer, context)

            def evaluate(self, population, context):
                Exploding.calls += 1
                if Exploding.calls > 4:
                    raise RuntimeError("mid-run failure")
                return super().evaluate(population, context)

            def close(self):
                closed.append(self)
                super().close()

        with pytest.raises(RuntimeError, match="mid-run failure"):
            run_islands(hanoi3, _cfg(), make_rng(0), evaluator_factory=Exploding)
        assert len(closed) == 3


class TestRunIslands:
    def test_solves_hanoi3(self, hanoi3):
        result = run_islands(hanoi3, _cfg(), make_rng(0))
        assert result.solved
        final = hanoi3.execute(result.best.decoded.operations)
        assert hanoi3.is_goal(final)

    def test_population_sizes_preserved_across_migration(self, hanoi3):
        cfg = _cfg(island_kw={"stop_on_goal": False, "generations": 12})
        # Patch through a run and verify sizes via histories: every island
        # records its full generation count with a constant population.
        result = run_islands(hanoi3, cfg, make_rng(1))
        for history in result.histories:
            assert len(history) == 12

    def test_early_stop_on_goal(self, hanoi3):
        result = run_islands(hanoi3, _cfg(), make_rng(2))
        if result.solved:
            assert result.generations_run <= 30

    def test_migration_counter(self, hanoi3):
        cfg = _cfg(island_kw={"stop_on_goal": False, "generations": 11}, migration_interval=5)
        result = run_islands(hanoi3, cfg, make_rng(3))
        assert result.migrations == 2  # after generations 5 and 10

    def test_reproducible(self, hanoi3):
        a = run_islands(hanoi3, _cfg(), make_rng(42))
        b = run_islands(hanoi3, _cfg(), make_rng(42))
        assert np.array_equal(a.best.genes, b.best.genes)
        assert a.best_island == b.best_island

    def test_best_island_index_valid(self, hanoi3):
        result = run_islands(hanoi3, _cfg(), make_rng(4))
        assert 0 <= result.best_island < 3

    def test_histories_one_per_island(self, hanoi3):
        result = run_islands(hanoi3, _cfg(), make_rng(5))
        assert len(result.histories) == 3
