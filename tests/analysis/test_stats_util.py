"""Tests for the statistics helpers."""

import numpy as np
import pytest

from repro.analysis import MeanCI, bootstrap_ci, mann_whitney, mean_ci, summarize
from repro.core import make_rng


class TestMeanCI:
    def test_contains_mean(self):
        ci = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert ci.low <= ci.mean <= ci.high
        assert ci.mean == pytest.approx(2.5)
        assert ci.n == 4

    def test_single_value_degenerate(self):
        ci = mean_ci([5.0])
        assert ci.low == ci.mean == ci.high == 5.0

    def test_constant_sample_degenerate(self):
        ci = mean_ci([2.0, 2.0, 2.0])
        assert ci.low == ci.high == 2.0

    def test_higher_confidence_wider(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = mean_ci(data, confidence=0.80)
        wide = mean_ci(data, confidence=0.99)
        assert (wide.high - wide.low) > (narrow.high - narrow.low)

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_ci([])
        with pytest.raises(ValueError):
            mean_ci([1.0], confidence=1.5)

    def test_str(self):
        assert "n=2" in str(mean_ci([1.0, 2.0]))

    def test_coverage_sanity(self):
        """~95% of 95% CIs over N(0,1) samples should contain 0."""
        rng = make_rng(0)
        hits = 0
        for _ in range(300):
            ci = mean_ci(rng.normal(0, 1, size=15))
            hits += ci.low <= 0 <= ci.high
        assert 0.90 <= hits / 300 <= 0.99


class TestBootstrap:
    def test_contains_point_estimate(self):
        rng = make_rng(1)
        data = rng.normal(10, 2, size=50)
        low, high = bootstrap_ci(data, rng)
        assert low <= float(np.mean(data)) <= high

    def test_custom_statistic(self):
        rng = make_rng(2)
        data = rng.normal(0, 1, size=40)
        low, high = bootstrap_ci(data, rng, statistic=np.median)
        assert low <= float(np.median(data)) <= high

    def test_validation(self):
        rng = make_rng(3)
        with pytest.raises(ValueError):
            bootstrap_ci([], rng)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], rng, n_resamples=0)


class TestMannWhitney:
    def test_detects_shift(self):
        rng = make_rng(4)
        a = rng.normal(0, 1, size=40)
        b = rng.normal(2, 1, size=40)
        _stat, p = mann_whitney(a, b)
        assert p < 0.001

    def test_no_difference(self):
        rng = make_rng(5)
        a = rng.normal(0, 1, size=40)
        b = rng.normal(0, 1, size=40)
        _stat, p = mann_whitney(a, b)
        assert p > 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            mann_whitney([], [1.0])


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["n"] == 3
        assert s["mean"] == pytest.approx(2.0)
        assert s["median"] == 2.0
        assert s["min"] == 1.0 and s["max"] == 3.0

    def test_single_value_std_zero(self):
        assert summarize([7.0])["std"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
