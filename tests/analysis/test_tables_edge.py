"""Edge cases of the table/report rendering path.

Empty trial sets, NaN metric columns and degenerate (single-seed)
confidence intervals all occur in practice — a killed sweep, a failed
cell, a `--trials 1` smoke run — and must degrade readably instead of
raising mid-report.
"""

import math

import pytest

from repro.analysis.stats_util import mean_ci
from repro.analysis.tables import Table, _fmt


class TestEmptyTable:
    def test_render_with_no_rows(self):
        table = Table(title="Empty", columns=["a", "bb"])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Empty"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 4  # title, rule, header, separator — no data rows

    def test_csv_with_no_rows_is_header_only(self, tmp_path):
        table = Table(title="Empty", columns=["a", "bb"])
        out = tmp_path / "empty.csv"
        text = table.to_csv(out)
        assert text.splitlines() == ["a,bb"]
        assert out.read_text().splitlines() == ["a,bb"]

    def test_column_lookup_on_empty_table(self):
        table = Table(title="Empty", columns=["a"])
        assert table.column("a") == []
        with pytest.raises(KeyError, match="no column"):
            table.column("missing")


class TestNaNColumns:
    def test_fmt_nan_and_inf(self):
        assert _fmt(float("nan")) == "nan"
        assert _fmt(1.0) == "1"
        assert _fmt(1.25) == "1.25"
        assert _fmt("text") == "text"

    def test_render_nan_cells(self):
        table = Table(title="T", columns=["metric", "value"])
        table.add_row("solved", float("nan"))
        table.add_row("cost", 3.5)
        text = table.render()
        assert "nan" in text
        assert "3.5" in text

    def test_csv_preserves_nan(self):
        table = Table(title="T", columns=["v"]).add_row(float("nan"))
        assert "nan" in table.to_csv()


class TestRowValidation:
    def test_wrong_width_rejected(self):
        table = Table(title="T", columns=["a", "b"])
        with pytest.raises(ValueError, match="2 columns"):
            table.add_row(1)

    def test_add_row_chains(self):
        table = Table(title="T", columns=["a"]).add_row(1).add_row(2)
        assert table.column("a") == [1, 2]


class TestDegenerateCI:
    """Single-seed sweeps must report a point interval, not crash."""

    def test_single_value(self):
        ci = mean_ci([4.25])
        assert (ci.mean, ci.low, ci.high, ci.n) == (4.25, 4.25, 4.25, 1)

    def test_zero_variance_many_values(self):
        ci = mean_ci([2.0] * 10)
        assert ci.low == ci.high == ci.mean == 2.0
        assert ci.n == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_nan_propagates_not_raises(self):
        # NaN metrics are filtered upstream (repro.exp.report._numeric);
        # mean_ci itself just propagates them, documented here.
        ci = mean_ci([1.0, float("nan")])
        assert math.isnan(ci.mean)
