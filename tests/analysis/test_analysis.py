"""Tests for tables, rendering, and the experiment drivers (scaled)."""

import math

import pytest

from repro.analysis import (
    ExperimentScale,
    Table,
    figure1,
    figure2,
    figure3,
    hanoi_max_len,
    hanoi_parameter_table,
    profile_call,
    render_hanoi,
    render_tile_board,
    run_hanoi_table2,
    run_tile_table4,
    run_tile_table5,
    scale_from_env,
    tile_init_length,
    tile_max_len,
    tile_parameter_table,
)


class TestTable:
    def test_add_row_and_column(self):
        t = Table("T", ["a", "b"]).add_row(1, 2).add_row(3, 4)
        assert t.column("b") == [2, 4]

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            Table("T", ["a"]).add_row(1, 2)

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            Table("T", ["a"]).column("z")

    def test_render_contains_everything(self):
        text = Table("Title", ["col"]).add_row(3.14159).render()
        assert "Title" in text and "col" in text and "3.142" in text

    def test_csv_round_trip(self, tmp_path):
        t = Table("T", ["a", "b"]).add_row(1, "x")
        path = tmp_path / "t.csv"
        text = t.to_csv(path)
        assert path.read_text() == text
        assert "a,b" in text and "1,x" in text


class TestRender:
    def test_figure1_has_all_disks_on_a(self):
        fig = figure1()
        assert "=====|=====" in fig  # the size-5 disk
        assert fig.count("=") == 2 * sum(2 * d for d in range(1, 6)) // 2

    def test_figure2_goal_on_b(self):
        lines = figure2().splitlines()
        bottom = lines[-3]  # widest disk row
        width = 11  # column width for 5 disks
        left, mid, right = bottom[:width], bottom[width + 2 : 2 * width + 2], bottom[2 * width + 4 :]
        assert "=" in mid and "=" not in left and "=" not in right

    def test_figure3_shows_both_boards(self):
        fig = figure3()
        assert "(a) initial" in fig and "(b) goal" in fig
        assert "15" in fig and " 1 " in fig

    def test_render_tile_board_validates_length(self):
        with pytest.raises(ValueError):
            render_tile_board((1, 2, 3), 3)

    def test_render_hanoi_deterministic(self):
        a = render_hanoi(((3, 2, 1), (), ()), 3)
        b = render_hanoi(((3, 2, 1), (), ()), 3)
        assert a == b


class TestScaleAndLimits:
    def test_hanoi_max_len(self):
        assert hanoi_max_len(5) == 5 * 31

    def test_tile_max_len(self):
        assert tile_max_len(3) == 162
        assert tile_max_len(4) == 512

    def test_tile_init_length(self):
        assert tile_init_length(3) == round(9 * math.log2(9))
        assert tile_init_length(4) == 64

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert scale_from_env().label == "paper"
        monkeypatch.delenv("REPRO_FULL")
        assert scale_from_env().label == "scaled"

    def test_paper_scale_matches_table1(self):
        s = ExperimentScale.paper()
        assert s.population_size == 200
        assert s.generations_single == 500
        assert s.generations_phase == 100
        assert s.max_phases == 5
        assert s.runs_hanoi == 10 and s.runs_tile == 50


class TestParameterTables:
    def test_table1_contents(self):
        text = hanoi_parameter_table().render()
        assert "200" in text and "500" in text and "Tournament (2)" in text

    def test_table3_contents(self):
        text = tile_parameter_table().render()
        assert "Random / State-aware / Mixed" in text


TINY = ExperimentScale.scaled(
    population_size=30,
    generations_single=40,
    generations_phase=15,
    runs_hanoi=2,
    runs_tile=2,
    hanoi_disks=(3,),
    tile_sizes=(3,),
)


class TestExperimentDrivers:
    def test_table2_structure_and_shape(self):
        t = run_hanoi_table2(TINY, seed=1)
        assert t.column("GA Type") == ["single-phase", "multi-phase"]
        assert all(0.0 <= f <= 1.0 for f in t.column("Avg Goal Fitness"))
        assert all(n <= 2 for n in t.column("Solved Runs"))

    def test_table4_structure(self):
        t = run_tile_table4(TINY, seed=1)
        assert t.column("Crossover") == ["state-aware", "random", "mixed"]
        assert t.column("Tiles") == [9, 9, 9]
        assert all(time >= 0 for time in t.column("Avg Time (s)"))

    def test_table5_counts_bounded(self):
        t = run_tile_table5(TINY, seed=1)
        for col in ("Random", "State-aware", "Mixed"):
            counts = t.column(col)
            assert sum(counts) <= TINY.runs_tile
            assert all(c >= 0 for c in counts)

    def test_drivers_reproducible(self):
        a = run_hanoi_table2(TINY, seed=3).rows
        b = run_hanoi_table2(TINY, seed=3).rows
        assert a == b


class TestProfiling:
    def test_profile_call_returns_result_and_report(self):
        result, report = profile_call(sum, [1, 2, 3])
        assert result == 6
        assert "cumulative" in report
