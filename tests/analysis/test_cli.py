"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.obs import read_trace


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "hanoi"])
        assert args.size == 5 and args.phases == 5 and args.crossover == "random"

    def test_bad_domain_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "rubik"])

    def test_table_number_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])


class TestCommands:
    def test_solve_hanoi(self, capsys):
        rc = main([
            "solve", "hanoi", "--size", "3", "--population", "40",
            "--generations", "40", "--phases", "3", "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "solved:        True" in out

    def test_solve_single_phase_with_plan(self, capsys):
        rc = main([
            "solve", "hanoi", "--size", "3", "--population", "80",
            "--generations", "150", "--phases", "1", "--seed", "0", "--show-plan",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "move(" in out

    def test_figures(self, capsys):
        for n, marker in ((1, "====="), (2, "====="), (3, "(b) goal")):
            assert main(["figure", str(n)]) == 0
            assert marker in capsys.readouterr().out

    def test_parameter_tables(self, capsys):
        assert main(["table", "1"]) == 0
        assert "Population size" in capsys.readouterr().out
        assert main(["table", "3"]) == 0
        assert "Crossover type" in capsys.readouterr().out

    def test_schedule_command(self, capsys):
        rc = main(["schedule", "--tasks", "24", "--machines", "4", "--generations", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "consistent" in out and "Min-min" in out


class TestObservabilityFlags:
    SOLVE = [
        "solve", "hanoi", "--size", "3", "--population", "40",
        "--generations", "30", "--phases", "2", "--seed", "0",
    ]

    def test_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "out.jsonl"
        rc = main([*self.SOLVE, "--trace", str(trace), "--metrics"])
        out = capsys.readouterr().out
        assert rc == 0
        # The trace parses back into typed events covering the run.
        events = read_trace(trace)
        kinds = {e.kind for e in events}
        assert {"phase-start", "generation", "evaluation-batch"} <= kinds
        # The metrics summary carries the headline derived rates.  Hanoi
        # has a kernel, so the default run takes the vectorised decode path
        # and reports its throughput instead of object-engine cache rates.
        assert "evals_per_sec" in out
        assert "vector_genes_per_sec" in out

    def test_progress_goes_to_stderr(self, capsys):
        rc = main([*self.SOLVE, "--progress"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "gen" in captured.err

    def test_trace_on_schedule_subcommand(self, tmp_path):
        trace = tmp_path / "sched.jsonl"
        rc = main([
            "schedule", "--tasks", "16", "--machines", "4",
            "--generations", "5", "--trace", str(trace),
        ])
        assert rc == 0
        events = read_trace(trace, kind="scheduler-generation")
        # One GA run per consistency class, 5 generations each.
        assert [e.generation for e in events] == list(range(5)) * 3

    def test_solve_mode_flags(self, capsys):
        rc = main([
            "solve", "hanoi", "--size", "3", "--population", "40",
            "--generations", "40", "--seed", "0",
            "--mode", "islands", "--islands", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mode:          islands" in out
