"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "hanoi"])
        assert args.size == 5 and args.phases == 5 and args.crossover == "random"

    def test_bad_domain_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "rubik"])

    def test_table_number_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])


class TestCommands:
    def test_solve_hanoi(self, capsys):
        rc = main([
            "solve", "hanoi", "--size", "3", "--population", "40",
            "--generations", "40", "--phases", "3", "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "solved:        True" in out

    def test_solve_single_phase_with_plan(self, capsys):
        rc = main([
            "solve", "hanoi", "--size", "3", "--population", "80",
            "--generations", "150", "--phases", "1", "--seed", "0", "--show-plan",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "move(" in out

    def test_figures(self, capsys):
        for n, marker in ((1, "====="), (2, "====="), (3, "(b) goal")):
            assert main(["figure", str(n)]) == 0
            assert marker in capsys.readouterr().out

    def test_parameter_tables(self, capsys):
        assert main(["table", "1"]) == 0
        assert "Population size" in capsys.readouterr().out
        assert main(["table", "3"]) == 0
        assert "Crossover type" in capsys.readouterr().out

    def test_schedule_command(self, capsys):
        rc = main(["schedule", "--tasks", "24", "--machines", "4", "--generations", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "consistent" in out and "Min-min" in out
