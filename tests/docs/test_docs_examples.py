"""The documentation is executable: every fenced ``python`` block runs.

Blocks within one Markdown file execute in order in a shared namespace
(later blocks may build on names the quickstart block defined, exactly as
a reader pasting them into one session would experience).  The working
directory is a temp dir so doc snippets that write files (JSONL traces)
never dirty the repo.
"""

import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

_FENCE = re.compile(r"^```(\w*)\s*$")


def python_blocks(path: Path):
    """Yield (start_line, source) for each fenced ```python block."""
    blocks = []
    lang = None
    buf = []
    start = 0
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        fence = _FENCE.match(line)
        if fence and lang is None:
            lang = fence.group(1)
            buf = []
            start = lineno + 1
        elif line.strip() == "```" and lang is not None:
            if lang == "python":
                blocks.append((start, "\n".join(buf)))
            lang = None
        elif lang is not None:
            buf.append(line)
    return blocks


DOC_FILES = [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("**/*.md"))


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_python_blocks_execute(doc, tmp_path, monkeypatch):
    blocks = python_blocks(doc)
    if not blocks:
        pytest.skip(f"{doc.name} has no fenced python blocks")
    monkeypatch.chdir(tmp_path)  # snippets may write trace files
    namespace = {"__name__": "__docs__"}
    for start, source in blocks:
        code = compile(source, f"{doc.name}:{start}", "exec")
        try:
            exec(code, namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"{doc.name} block at line {start} raised {exc!r}")


def test_readme_has_executable_blocks():
    assert len(python_blocks(REPO_ROOT / "README.md")) >= 3


def test_quickstart_example_runs(tmp_path):
    env = {"PYTHONPATH": str(REPO_ROOT / "src")}
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / "quickstart.py")],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env={**env, "PATH": "/usr/bin:/bin"},
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "quickstart should print its outcome"
