"""The architecture page's module map tracks the actual package tree."""

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC = REPO_ROOT / "docs" / "architecture.md"
SRC = REPO_ROOT / "src" / "repro"


def top_level_packages():
    """Every ``repro.*`` package shipped in ``src`` (has an ``__init__.py``)."""
    return sorted(
        child.name
        for child in SRC.iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    )


def package_map_rows(text):
    """First-column package names of the ``## Package map`` table."""
    section = text.split("## Package map", 1)[1].split("##", 1)[0]
    return re.findall(r"^\| `(repro[.\w]*)` \|", section, re.MULTILINE)


class TestPackageMap:
    def test_every_shipped_package_has_a_map_row(self):
        rows = package_map_rows(DOC.read_text(encoding="utf-8"))
        missing = [
            name for name in top_level_packages() if f"repro.{name}" not in rows
        ]
        assert missing == [], (
            f"packages missing from the docs/architecture.md map: {missing}"
        )

    def test_every_map_row_names_a_real_module(self):
        for row in package_map_rows(DOC.read_text(encoding="utf-8")):
            relative = Path(*row.split("."))
            package = REPO_ROOT / "src" / relative
            assert (package / "__init__.py").exists() or package.with_suffix(
                ".py"
            ).exists(), f"map row {row!r} does not exist under src/"

    def test_known_recent_packages_are_mapped(self):
        # The rows PRs 8-9 added; a regression here means the map went stale.
        text = DOC.read_text(encoding="utf-8")
        rows = package_map_rows(text)
        assert "repro.soak" in rows and "repro.service" in rows
        assert "portfolio" in text  # the core row must mention the portfolio engine
