"""Intra-repo Markdown links resolve: files exist, heading anchors match.

External (http/https/mailto) links are out of scope — CI must not depend
on the network — but every relative path and ``#fragment`` in the core
documents is checked against the working tree.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

DOC_FILES = [
    REPO_ROOT / name
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "CHANGES.md")
    if (REPO_ROOT / name).exists()
] + sorted((REPO_ROOT / "docs").glob("**/*.md"))

# [text](target) — excluding images' srcsets and code spans is handled by
# only matching inline-link syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line (sufficient approximation)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path: Path) -> set:
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(github_slug(match.group(1)))
    return anchors


def links_in(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_intra_repo_links_resolve(doc):
    problems = []
    for lineno, target in links_in(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        dest = doc if not path_part else (doc.parent / path_part).resolve()
        if not dest.exists():
            problems.append(f"{doc.name}:{lineno} -> {target}: file not found")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in heading_anchors(dest):
                problems.append(
                    f"{doc.name}:{lineno} -> {target}: no heading with anchor "
                    f"#{fragment} in {dest.name}"
                )
    assert not problems, "\n".join(problems)


def test_readme_links_to_architecture_doc():
    targets = [t for _, t in links_in(REPO_ROOT / "README.md")]
    assert any("docs/architecture.md" in t for t in targets)
