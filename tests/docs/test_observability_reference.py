"""The observability reference stays honest: docs diff against code.

``docs/observability.md`` carries three generated tables (events,
instruments, derived metrics).  These tests re-render them from
``repro.obs`` introspection and diff against the committed page, and
sweep the source tree so every instrument literal is declared in the
canonical inventory — documentation drift fails here, not in review.
"""

import dataclasses
import re
from pathlib import Path

import pytest

from repro.obs import CANONICAL_INSTRUMENTS, DERIVED_METRICS, InstrumentSpec
from repro.obs.events import EVENT_KINDS, RunEvent
from repro.obs.reference import (
    GENERATED_SECTIONS,
    render_derived_table,
    render_event_table,
    render_instrument_table,
    rewrite_generated_sections,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC = REPO_ROOT / "docs" / "observability.md"

#: instrument-creation literals: .counter("name") / .timer(...) / .histogram(...)
_INSTRUMENT_CALL = re.compile(r'\.(counter|timer|histogram)\(\s*"([A-Za-z0-9_]+)"')


class TestGeneratedSectionsMatchCode:
    def test_committed_page_is_a_fixed_point_of_the_renderer(self):
        text = DOC.read_text(encoding="utf-8")
        regenerated = rewrite_generated_sections(text)
        assert regenerated == text, (
            "docs/observability.md is stale — regenerate with:\n"
            "  PYTHONPATH=src python -m repro.obs.reference docs/observability.md"
        )

    def test_page_carries_every_generated_section(self):
        text = DOC.read_text(encoding="utf-8")
        for name in GENERATED_SECTIONS:
            assert f"<!-- BEGIN GENERATED: {name} -->" in text
            assert f"<!-- END GENERATED: {name} -->" in text

    def test_unknown_section_names_fail_loudly(self):
        bogus = "<!-- BEGIN GENERATED: nope -->\nx\n<!-- END GENERATED: nope -->"
        with pytest.raises(KeyError):
            rewrite_generated_sections(bogus)


class TestEventTable:
    def test_every_registered_kind_has_a_row(self):
        table = render_event_table()
        for kind, cls in EVENT_KINDS.items():
            assert f"| `{kind}` | `{cls.__name__}` |" in table

    def test_rows_carry_payload_fields_without_base_scope(self):
        table = render_event_table()
        base = {f.name for f in dataclasses.fields(RunEvent)}
        for cls in EVENT_KINDS.values():
            for field in dataclasses.fields(cls):
                if field.name in base:
                    continue
                assert f"`{field.name}`" in table
        assert "| `scope` |" not in table

    def test_documented_kinds_exactly_match_introspection(self):
        documented = re.findall(r"^\| `([a-z0-9-]+)` \|", render_event_table(), re.MULTILINE)
        assert sorted(documented) == documented  # table is kind-sorted
        assert set(documented) == set(EVENT_KINDS)


class TestInstrumentInventory:
    def test_every_source_literal_is_declared(self):
        # One-directional on purpose: some instruments are ticked through
        # variables (e.g. rung-counter maps), so the reverse containment
        # cannot be checked by grepping literals.
        declared = {(spec.name, spec.kind) for spec in CANONICAL_INSTRUMENTS}
        undeclared = {}
        for path in (REPO_ROOT / "src").rglob("*.py"):
            for kind, name in _INSTRUMENT_CALL.findall(path.read_text(encoding="utf-8")):
                if (name, kind) not in declared:
                    undeclared.setdefault(f"{name} ({kind})", str(path.relative_to(REPO_ROOT)))
        assert undeclared == {}, (
            f"instruments missing from CANONICAL_INSTRUMENTS: {undeclared}"
        )

    def test_inventory_names_are_unique(self):
        names = [spec.name for spec in CANONICAL_INSTRUMENTS]
        assert len(names) == len(set(names))

    def test_inventory_shape(self):
        for spec in CANONICAL_INSTRUMENTS:
            assert isinstance(spec, InstrumentSpec)
            assert spec.kind in ("counter", "timer", "histogram")
            assert spec.meaning
        assert {spec.layer for spec in CANONICAL_INSTRUMENTS} == {
            "core", "grid", "scheduling", "exp", "soak", "service",
        }

    def test_instrument_table_names_every_instrument(self):
        table = render_instrument_table()
        for spec in CANONICAL_INSTRUMENTS:
            assert f"| `{spec.name}` | {spec.kind} |" in table


class TestDerivedTable:
    def test_every_derived_metric_has_a_row(self):
        table = render_derived_table()
        for name, meaning in DERIVED_METRICS:
            assert f"| `{name}` |" in table

    def test_summary_outputs_only_use_declared_names(self):
        from repro.obs.metrics import (
            MetricsRegistry,
            planner_summary,
            service_summary,
            soak_summary,
        )

        metrics = MetricsRegistry()
        metrics.counter("evals").add(100)
        metrics.timer("eval_batch").record(0.5)
        metrics.counter("decode_cache_hits").add(8)
        metrics.counter("decode_cache_misses").add(2)
        metrics.counter("service_requests").add(10)
        metrics.counter("service_shed").add(1)
        metrics.histogram("service_latency").observe(0.05)
        metrics.histogram("replan_latency").observe(0.01)
        metrics.counter("soak_completed").add(4)
        metrics.counter("soak_shed").add(1)
        derived = {
            **planner_summary(metrics),
            **soak_summary(metrics),
            **service_summary(metrics),
        }
        declared = {name for name, _ in DERIVED_METRICS}
        assert derived, "expected at least one derived metric"
        assert set(derived) <= declared
