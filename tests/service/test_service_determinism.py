"""Same-seed request traces are byte-identical serial vs concurrent.

The acceptance contract of the service: a request's canonical per-request
event trace (wall-clock and cache-warmth payloads masked via
``service_canonical_events``) is a pure function of ``(request, seed)``,
regardless of worker count, interleaving or engine warmth.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.service import (
    DONE,
    EngineCache,
    PlanRequest,
    RunScheduler,
    ServicePool,
    service_canonical_events,
)


def run_batch(seeds, budget, population, concurrent, workers=4, warm=True):
    """Run one request per seed; return each run's canonical trace."""
    metrics = MetricsRegistry()
    scheduler = RunScheduler(
        engine_cache=EngineCache(enabled=warm, metrics=metrics),
        metrics=metrics,
        queue_cap=len(seeds) + 1,
        slice_gens=3,
    )
    runs = [
        scheduler.submit(
            PlanRequest(
                domain="hanoi", size=5, seed=seed, budget=budget, population=population
            )
        )
        for seed in seeds
    ]
    if concurrent:
        with ServicePool(scheduler, workers=workers):
            assert scheduler.wait_idle(timeout=300)
    else:
        scheduler.drain()
    assert all(run.state == DONE for run in runs)
    return [run.canonical_trace() for run in runs]


class TestSerialVsConcurrent:
    @given(
        base_seed=st.integers(0, 10_000),
        budget=st.integers(6, 24),
        population=st.sampled_from([16, 30]),
    )
    @settings(max_examples=4, deadline=None)
    def test_traces_identical_across_execution_modes(self, base_seed, budget, population):
        # Repeated seeds on purpose: warm same-seed replays must not change
        # the trace either.
        seeds = [base_seed, base_seed + 1, base_seed, base_seed + 1, base_seed]
        serial = run_batch(seeds, budget, population, concurrent=False)
        concurrent = run_batch(seeds, budget, population, concurrent=True)
        assert serial == concurrent

    def test_traces_identical_warm_vs_cold(self):
        seeds = [7, 7, 7]
        warm = run_batch(seeds, budget=12, population=20, concurrent=False, warm=True)
        cold = run_batch(seeds, budget=12, population=20, concurrent=False, warm=False)
        assert warm == cold

    def test_trace_contains_the_deterministic_event_kinds(self):
        (trace,) = run_batch([3], budget=10, population=20, concurrent=False)
        kinds = {record["kind"] for record in trace}
        assert "generation" in kinds
        assert "service-slice" in kinds and "service-completed" in kinds

    def test_masking_zeroes_wall_clock_and_warmth_payloads(self):
        (trace,) = run_batch([3], budget=10, population=20, concurrent=False)
        batches = [r for r in trace if r["kind"] == "evaluation-batch"]
        assert batches, "expected evaluation-batch events in the trace"
        for record in batches:
            assert record["seconds"] == 0.0
            assert record["cache_hits"] == 0 and record["evals_skipped"] == 0

    def test_masking_helper_is_idempotent(self):
        metrics = MetricsRegistry()
        scheduler = RunScheduler(metrics=metrics)
        run = scheduler.submit(
            PlanRequest(domain="hanoi", size=4, seed=3, budget=10, population=20)
        )
        scheduler.drain()
        once = run.canonical_trace()
        assert service_canonical_events(run.recorder.events) == once
