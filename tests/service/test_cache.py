"""Engine-cache tests: warm reuse, pooling bounds, the cold ablation."""

import pytest

from repro.obs import MetricsRegistry
from repro.service import EngineCache, config_hash


class TestConfigHash:
    def test_same_config_same_hash(self):
        assert config_hash("hanoi", (4,)) == config_hash("hanoi", (4,))

    def test_hash_covers_name_and_args(self):
        assert config_hash("hanoi", (4,)) != config_hash("hanoi", (5,))
        assert config_hash("hanoi", (4,)) != config_hash("tile", (4,))

    def test_hash_is_short_and_stable_across_arg_container(self):
        digest = config_hash("hanoi", [4])
        assert len(digest) == 16
        assert digest == config_hash("hanoi", (4,))


class TestEngineCache:
    def test_first_lease_is_cold(self):
        cache = EngineCache()
        lease = cache.lease("hanoi", (3,))
        assert lease.warm is False
        assert cache.stats()["warm_misses"] == 1

    def test_release_then_lease_is_warm_with_same_pair(self):
        cache = EngineCache()
        first = cache.lease("hanoi", (3,))
        cache.release(first)
        second = cache.lease("hanoi", (3,))
        assert second.warm is True
        assert second.domain is first.domain and second.engine is first.engine

    def test_concurrent_leases_get_distinct_pairs(self):
        cache = EngineCache()
        a = cache.lease("hanoi", (3,))
        b = cache.lease("hanoi", (3,))
        assert a.engine is not b.engine and a.domain is not b.domain

    def test_different_configs_never_share(self):
        cache = EngineCache()
        cache.release(cache.lease("hanoi", (3,)))
        assert cache.lease("hanoi", (4,)).warm is False

    def test_release_is_idempotent(self):
        cache = EngineCache(max_idle_per_key=4)
        lease = cache.lease("hanoi", (3,))
        cache.release(lease)
        cache.release(lease)  # double release must not double-pool the pair
        assert cache.stats()["idle"][lease.key] == 1

    def test_idle_pool_is_bounded_per_key(self):
        cache = EngineCache(max_idle_per_key=2)
        leases = [cache.lease("hanoi", (3,)) for _ in range(4)]
        for lease in leases:
            cache.release(lease)
        assert cache.stats()["idle"][leases[0].key] == 2

    def test_disabled_cache_never_warms(self):
        cache = EngineCache(enabled=False)
        lease = cache.lease("hanoi", (3,))
        cache.release(lease)
        assert cache.lease("hanoi", (3,)).warm is False
        assert cache.stats() == {
            "enabled": False,
            "warm_hits": 0,
            "warm_misses": 2,
            "idle": {},
        }

    def test_metrics_tick_warm_counters(self):
        metrics = MetricsRegistry()
        cache = EngineCache(metrics=metrics)
        cache.release(cache.lease("hanoi", (3,)))
        cache.lease("hanoi", (3,))
        assert metrics.counters["service_warm_misses"].value == 1
        assert metrics.counters["service_warm_hits"].value == 1

    def test_unknown_domain_raises_from_registry(self):
        with pytest.raises(KeyError):
            EngineCache().lease("no-such-domain", ())

    def test_cache_engines_keep_their_memo_unconditionally(self):
        # The adaptive low-hit-rate pause is wrong for shared-lifetime
        # engines: cross-request warmth is the whole point of the pool.
        assert EngineCache().lease("hanoi", (3,)).engine.adaptive_memo is False

    def test_bad_pool_bound_rejected(self):
        with pytest.raises(ValueError, match="max_idle_per_key"):
            EngineCache(max_idle_per_key=0)
