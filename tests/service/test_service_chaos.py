"""Chaos tier: the service degrades gracefully when its pool dies mid-request.

Requests submitted with ``evaluator: "resilient"`` route evaluation
through the :class:`~repro.core.resilient.ResilientEvaluator` retry
ladder.  These tests kill real worker processes (and simulate a
permanently broken pool) under in-flight service requests and assert the
requests still complete — pool death becomes a retry or a degradation to
serial evaluation, never an error frame.
"""

import pytest

import repro.core.resilient as resilient
from repro.core import ResiliencePolicy, WorkerPoolError
from repro.core.parallel import Evaluator
from repro.obs import MetricsRegistry
from repro.service import DONE, PlanRequest, RunScheduler


class _BrokenPool(Evaluator):
    """Inner evaluator whose pool fails the first *failures* batches."""

    def __init__(self, failures):
        self.failures = failures

    def evaluate(self, population, context):
        if self.failures > 0:
            self.failures -= 1
            raise WorkerPoolError("simulated pool death")
        raise WorkerPoolError("pool stayed dead")


def patch_resilient(monkeypatch, **overrides):
    """Intercept the scheduler's resilient-evaluator construction."""
    real = resilient.ResilientEvaluator

    def build(*args, **kwargs):
        kwargs.update(overrides)
        return real(*args, **kwargs)

    monkeypatch.setattr(resilient, "ResilientEvaluator", build)


def resilient_request(**overrides):
    base = dict(
        domain="hanoi", size=3, seed=3, budget=20, population=20, evaluator="resilient"
    )
    base.update(overrides)
    return PlanRequest(**base)


NO_SLEEP = ResiliencePolicy(retry_max=1, degrade_after=2, sleep=lambda s: None)


@pytest.mark.chaos
@pytest.mark.timeout(300)
class TestPoolDeathMidRequest:
    def test_request_completes_despite_worker_crashes(self, monkeypatch):
        # Real worker processes are killed before the first two batches;
        # the pool restarts recover and the request completes untouched.
        patch_resilient(monkeypatch, worker_crashes=2)
        scheduler = RunScheduler(metrics=MetricsRegistry())
        run = scheduler.submit(resilient_request())
        scheduler.drain()
        assert run.state == DONE
        assert run.result["solved"] is True
        assert run._ga.evaluator.degraded is False  # the pool recovered

    def test_permanently_dead_pool_degrades_to_serial_and_finishes(self, monkeypatch):
        real = resilient.ResilientEvaluator
        monkeypatch.setattr(
            resilient,
            "ResilientEvaluator",
            lambda *a, **k: real(_BrokenPool(failures=10 ** 6), policy=NO_SLEEP),
        )
        scheduler = RunScheduler(metrics=MetricsRegistry())
        run = scheduler.submit(resilient_request())
        scheduler.drain()
        assert run.state == DONE
        assert run.result["solved"] is True
        assert run._ga.evaluator.degraded is True

    def test_degraded_request_matches_healthy_trace(self, monkeypatch):
        # Degradation changes *where* fitness is computed, never *what* it
        # is: the per-generation fitness trajectory must match a healthy
        # serial run's bit-for-bit (the chaotic trace additionally carries
        # retry/degradation events, and its batches move between pool and
        # serial, so only `generation` events are compared).
        scheduler = RunScheduler(metrics=MetricsRegistry())
        healthy = scheduler.submit(resilient_request())
        scheduler.drain()

        real = resilient.ResilientEvaluator
        monkeypatch.setattr(
            resilient,
            "ResilientEvaluator",
            lambda *a, **k: real(_BrokenPool(failures=10 ** 6), policy=NO_SLEEP),
        )
        chaotic_scheduler = RunScheduler(metrics=MetricsRegistry())
        chaotic = chaotic_scheduler.submit(resilient_request())
        chaotic_scheduler.drain()

        assert healthy.state == DONE and chaotic.state == DONE

        def generations(run):
            return [r for r in run.canonical_trace() if r["kind"] == "generation"]

        assert generations(chaotic) == generations(healthy)
