"""TCP front-end tests: framing over real sockets, disconnect semantics."""

import asyncio
import socket
import threading

import pytest

from repro.service import PlanRequest, PlanningServer, ServiceClient


class ServerThread:
    """A :class:`PlanningServer` on its own event-loop thread, for tests."""

    def __init__(self, **kwargs):
        kwargs.setdefault("port", 0)
        self.kwargs = kwargs
        self.server = None
        self.port = None
        self._loop = None
        self._stop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = PlanningServer(**self.kwargs)
        await self.server.start()
        self.port = self.server.port
        self._ready.set()
        await self._stop.wait()
        await self.server.close()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=30), "server never became ready"
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "server thread failed to stop"


@pytest.fixture
def server():
    with ServerThread(workers=2, queue_cap=8) as running:
        yield running


def fast_request(**overrides):
    base = dict(domain="hanoi", size=3, seed=3, budget=20, population=20)
    base.update(overrides)
    return PlanRequest(**base)


class TestWireSession:
    def test_ping_reports_protocol_version(self, server):
        with ServiceClient(port=server.port) as client:
            assert client.ping() == {"type": "pong", "version": 1}

    def test_plan_round_trip_solves(self, server):
        frames = []
        with ServiceClient(port=server.port) as client:
            result = client.plan(fast_request(), on_frame=frames.append)
        assert result["type"] == "result" and result["solved"] is True
        assert frames[0]["type"] == "accepted"
        assert any(f["type"] == "incumbent" for f in frames)

    def test_second_request_is_warm_across_connections(self, server):
        with ServiceClient(port=server.port) as client:
            cold = client.plan(fast_request())
        with ServiceClient(port=server.port) as client:
            warm = client.plan(fast_request())
        assert cold["warm"] is False and warm["warm"] is True

    def test_stats_frame_exposes_counters_and_cache(self, server):
        with ServiceClient(port=server.port) as client:
            client.plan(fast_request())
            stats = client.stats()
        assert stats["counters"]["service_completed"] == 1
        assert stats["cache"]["warm_misses"] == 1

    def test_malformed_line_gets_error_and_connection_survives(self, server):
        with ServiceClient(port=server.port) as client:
            client._sock.sendall(b"this is not json\n")
            for frame in client._frames():
                if frame["type"] == "error":
                    assert "malformed" in frame["message"]
                    break
            assert client.ping()["type"] == "pong"

    def test_unknown_frame_type_gets_error(self, server):
        with ServiceClient(port=server.port) as client:
            client._send({"type": "teapot"})
            for frame in client._frames():
                assert frame["type"] == "error"
                assert "teapot" in frame["message"]
                break

    def test_invalid_plan_fields_get_error(self, server):
        with ServiceClient(port=server.port) as client:
            client._send({"type": "plan", "domain": "hanoi", "size": 0})
            for frame in client._frames():
                assert frame["type"] == "error" and "size" in frame["message"]
                break

    def test_concurrent_clients_multiplex_one_server(self, server):
        results = {}

        def one(seed):
            with ServiceClient(port=server.port) as client:
                results[seed] = client.plan(fast_request(seed=seed, budget=10))

        threads = [threading.Thread(target=one, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert len(results) == 4
        assert all(r["type"] == "result" for r in results.values())


class TestDisconnect:
    def test_disconnect_mid_stream_cancels_the_live_run(self, server):
        # A budget far beyond what the test waits for: the run must still
        # be executing when the client vanishes.
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=30)
        sock.sendall(
            b'{"type":"plan","domain":"hanoi","size":6,"budget":5000,'
            b'"population":40,"stream":true}\n'
        )
        assert b"accepted" in sock.recv(65536)  # admitted and streaming
        sock.close()  # vanish mid-request
        scheduler = server.server.scheduler
        assert scheduler.wait_idle(timeout=60), "cancelled run never drained"
        assert scheduler.metrics.counters["service_shed"].value == 1
        assert "service_completed" not in scheduler.metrics.counters

    def test_eof_without_requests_is_a_clean_close(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=30)
        sock.close()
        with ServiceClient(port=server.port) as client:  # server still serving
            assert client.ping()["type"] == "pong"
