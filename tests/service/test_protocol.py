"""Wire-protocol tests: framing, incremental reads, request validation."""

import json

import pytest

from repro.service import (
    MAX_FRAME_BYTES,
    FrameReader,
    PlanRequest,
    ProtocolError,
    decode_frame,
    encode_frame,
    parse_plan_request,
)


class TestFraming:
    def test_encode_round_trips_through_decode(self):
        frame = {"type": "plan", "domain": "hanoi", "size": 4, "stream": True}
        assert decode_frame(encode_frame(frame)) == frame

    def test_encode_is_one_sorted_compact_line(self):
        data = encode_frame({"type": "ping", "a": 1})
        assert data.endswith(b"\n") and data.count(b"\n") == 1
        assert data == b'{"a":1,"type":"ping"}\n'

    def test_encode_rejects_non_json_values(self):
        with pytest.raises(ProtocolError, match="not JSON-serialisable"):
            encode_frame({"type": "plan", "x": object()})

    def test_encode_rejects_oversized_frames(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"type": "x", "pad": "a" * MAX_FRAME_BYTES})

    @pytest.mark.parametrize(
        "payload,match",
        [
            (b"not json\n", "malformed"),
            (b"[1,2]", "JSON object"),
            (b'{"no":"type"}', "missing a string 'type'"),
            (b'{"type":7}', "missing a string 'type'"),
        ],
    )
    def test_decode_rejects_bad_frames(self, payload, match):
        with pytest.raises(ProtocolError, match=match):
            decode_frame(payload)


class TestFrameReader:
    def test_reassembles_frames_across_arbitrary_chunks(self):
        wire = encode_frame({"type": "ping"}) + encode_frame({"type": "stats"})
        reader = FrameReader()
        frames = []
        for i in range(0, len(wire), 3):  # drip-feed 3 bytes at a time
            frames.extend(reader.feed(wire[i : i + 3]))
        assert [f["type"] for f in frames] == ["ping", "stats"]

    def test_partial_line_stays_buffered(self):
        reader = FrameReader()
        assert reader.feed(b'{"type":"pi') == []
        assert reader.feed(b'ng"}\n') == [{"type": "ping"}]

    def test_blank_lines_are_ignored(self):
        assert FrameReader().feed(b'\n  \n{"type":"ping"}\n') == [{"type": "ping"}]

    def test_unterminated_oversized_buffer_raises(self):
        reader = FrameReader()
        with pytest.raises(ProtocolError, match="unterminated"):
            reader.feed(b"x" * (MAX_FRAME_BYTES + 1))


def plan_frame(**overrides):
    frame = {"type": "plan", "domain": "hanoi", "size": 4}
    frame.update(overrides)
    return frame


class TestParsePlanRequest:
    def test_minimal_frame_gets_defaults(self):
        request = parse_plan_request(plan_frame())
        assert request == PlanRequest(domain="hanoi", size=4)
        assert request.tenant == "default" and request.evaluator == "serial"

    def test_full_frame_round_trips_every_field(self):
        request = parse_plan_request(
            plan_frame(
                tenant="t1",
                seed=9,
                population=50,
                budget=7,
                max_len=31,
                deadline_s=2,
                mode="portfolio",
                portfolio="ga,search:gbfs",
                stream=True,
                evaluator="resilient",
                vector=True,
            )
        )
        assert request.tenant == "t1" and request.seed == 9
        assert request.deadline_s == 2.0 and isinstance(request.deadline_s, float)
        assert request.portfolio == "ga,search:gbfs" and request.vector is True

    @pytest.mark.parametrize(
        "overrides,match",
        [
            ({"type": "stats"}, "'plan' frame"),
            ({"domain": ""}, "'domain'"),
            ({"domain": 3}, "'domain'"),
            ({"size": 0}, "'size'"),
            ({"size": True}, "'size'"),
            ({"tenant": ""}, "'tenant'"),
            ({"seed": -1}, "'seed'"),
            ({"population": 1}, "'population'"),
            ({"budget": 0}, "'budget'"),
            ({"max_len": 0}, "'max_len'"),
            ({"deadline_s": 0}, "'deadline_s'"),
            ({"mode": "magic"}, "'mode'"),
            ({"portfolio": "ga"}, "portfolio"),  # portfolio without mode=portfolio
            ({"stream": 1}, "'stream'"),
            ({"evaluator": "gpu"}, "'evaluator'"),
            ({"vector": "yes"}, "'vector'"),
            ({"bogus": 1}, "unknown plan fields: bogus"),
        ],
    )
    def test_bad_fields_raise_naming_the_field(self, overrides, match):
        with pytest.raises(ProtocolError, match=match):
            parse_plan_request(plan_frame(**overrides))

    def test_parse_accepts_decoded_wire_frame(self):
        wire = encode_frame(plan_frame(seed=3, budget=12))
        request = parse_plan_request(decode_frame(wire))
        assert request.seed == 3 and request.budget == 12
        assert json.loads(wire)["type"] == "plan"
