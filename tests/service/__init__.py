"""Tests for the planning service (`repro.service`)."""
