"""Run-scheduler tests: admission, fair share, deadlines, slicing, frames."""

import time

import pytest

from repro.core.fused_decode import numba_available

from repro.obs import MemoryRecorder, MetricsRegistry, Tracer
from repro.service import (
    DONE,
    FAILED,
    QUEUED,
    SHED,
    EngineCache,
    PlanRequest,
    RunScheduler,
    ServicePool,
    default_max_len,
)


class FakeClock:
    """Deterministic clock advancing *step* seconds per reading."""

    def __init__(self, step=0.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def make_scheduler(**kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    return RunScheduler(**kwargs)


def request(**overrides):
    base = dict(domain="hanoi", size=3, seed=3, budget=20, population=20)
    base.update(overrides)
    return PlanRequest(**base)


class TestLifecycle:
    def test_submit_drain_produces_result_frames_in_order(self):
        scheduler = make_scheduler()
        frames = []
        run = scheduler.submit(request(), subscriber=frames.append)
        assert run.state == QUEUED
        scheduler.drain()
        assert run.state == DONE
        assert frames[0]["type"] == "accepted" and frames[0]["queue_depth"] == 1
        assert frames[-1]["type"] == "result"
        assert frames[-1]["solved"] is True and frames[-1]["plan_length"] == 7
        kinds = {f["type"] for f in frames[1:-1]}
        assert kinds <= {"incumbent"}  # no stream=True, so no event frames

    def test_long_requests_take_multiple_slices(self):
        scheduler = make_scheduler(slice_gens=2)
        run = scheduler.submit(request(seed=0, budget=9, population=10))
        scheduler.drain()
        assert run.state == DONE
        assert run.slices >= 2
        assert run.result["slices"] == run.slices

    def test_incumbent_frames_improve_monotonically(self):
        scheduler = make_scheduler()
        frames = []
        scheduler.submit(request(), subscriber=frames.append)
        scheduler.drain()
        goals = [f["goal_fitness"] for f in frames if f["type"] == "incumbent"]
        assert goals, "expected at least one incumbent frame"
        assert goals == sorted(goals)
        assert any(f["solved"] for f in frames if f["type"] == "incumbent")

    def test_stream_requests_get_per_slice_event_frames(self):
        scheduler = make_scheduler(slice_gens=2)
        frames = []
        run = scheduler.submit(
            request(seed=0, budget=6, population=10, stream=True),
            subscriber=frames.append,
        )
        scheduler.drain()
        events = [f for f in frames if f["type"] == "event"]
        assert len(events) == run.slices
        assert all(f["event"]["kind"] == "service-slice" for f in events)
        assert events[-1]["event"]["done"] is True

    def test_second_same_config_request_is_warm(self):
        scheduler = make_scheduler()
        cold = scheduler.submit(request())
        scheduler.drain()
        warm = scheduler.submit(request())
        scheduler.drain()
        assert cold.result["warm"] is False and warm.result["warm"] is True

    def test_per_request_metrics_merge_into_shared_registry(self):
        metrics = MetricsRegistry()
        scheduler = make_scheduler(metrics=metrics)
        scheduler.submit(request())
        scheduler.drain()
        assert metrics.counters["evals"].value > 0
        assert metrics.counters["service_completed"].value == 1
        assert metrics.histograms["service_latency"].count == 1

    def test_portfolio_mode_races_and_streams_incumbents(self):
        scheduler = make_scheduler()
        frames = []
        run = scheduler.submit(
            request(mode="portfolio", portfolio="ga,search:gbfs", budget=10, population=10),
            subscriber=frames.append,
        )
        scheduler.drain()
        assert run.state == DONE and run.result["solved"] is True
        assert run.result["slices"] == 1
        assert any(f["type"] == "incumbent" for f in frames)


class TestAdmission:
    def test_queue_cap_sheds_with_queue_full(self):
        scheduler = make_scheduler(queue_cap=2)
        frames = []
        first = scheduler.submit(request(seed=1))
        second = scheduler.submit(request(seed=2))
        third = scheduler.submit(request(seed=3), subscriber=frames.append)
        assert first.state == QUEUED and second.state == QUEUED
        assert third.state == SHED and third.shed_reason == "queue-full"
        assert frames == [{"type": "shed", "id": 3, "reason": "queue-full"}]
        assert scheduler.metrics.counters["service_shed"].value == 1

    def test_unknown_domain_fails_with_error_frame(self):
        scheduler = make_scheduler()
        frames = []
        run = scheduler.submit(
            PlanRequest(domain="nope", size=3), subscriber=frames.append
        )
        assert run.state == FAILED and "unknown domain" in run.error
        assert frames[0]["type"] == "error"
        assert scheduler.metrics.counters["service_failed"].value == 1

    def test_underivable_max_len_fails(self):
        assert default_max_len("blocks", 4) is None
        run = make_scheduler().submit(PlanRequest(domain="blocks", size=4))
        assert run.state == FAILED and "max_len" in run.error

    def test_portfolio_mode_without_spec_fails(self):
        run = make_scheduler().submit(request(mode="portfolio"))
        assert run.state == FAILED and "portfolio" in run.error

    def test_cancel_before_execution_sheds_as_cancelled(self):
        scheduler = make_scheduler()
        run = scheduler.submit(request())
        scheduler.cancel(run)
        scheduler.drain()
        assert run.state == SHED and run.shed_reason == "cancelled"


class TestFairShare:
    def completion_order(self, fair_share):
        scheduler = make_scheduler(fair_share=fair_share, queue_cap=10)
        order = []

        def subscriber_for(name):
            def subscriber(frame):
                if frame["type"] == "result":
                    order.append(name)

            return subscriber

        for i in range(3):
            scheduler.submit(
                request(tenant="flood", seed=i, budget=2, population=10),
                subscriber=subscriber_for(f"flood-{i}"),
            )
        scheduler.submit(
            request(tenant="alpha", seed=9, budget=2, population=10),
            subscriber=subscriber_for("alpha"),
        )
        scheduler.drain()
        return order

    def test_deficit_round_robin_interleaves_tenants(self):
        # alpha arrived last but has no consumed slices, so it runs second.
        assert self.completion_order(fair_share=True) == [
            "flood-0",
            "alpha",
            "flood-1",
            "flood-2",
        ]

    def test_fifo_ablation_starves_the_light_tenant(self):
        assert self.completion_order(fair_share=False) == [
            "flood-0",
            "flood-1",
            "flood-2",
            "alpha",
        ]


class TestDeadlines:
    def test_deadline_expired_while_queued_is_shed_without_running(self):
        # Each clock reading advances 3s: the first request's completion
        # pushes time past the second's 5s deadline before it is picked.
        scheduler = make_scheduler(clock=FakeClock(step=3.0))
        first = scheduler.submit(request(seed=1, budget=2, population=10))
        late = scheduler.submit(
            request(seed=2, budget=2, population=10, deadline_s=5.0)
        )
        scheduler.drain()
        assert first.state == DONE
        assert late.state == SHED and late.shed_reason == "deadline-queued"
        assert late.slices == 0  # never executed

    def test_deadline_expired_while_running_returns_timed_out_result(self):
        # Deadline outlives the pick check (3s elapsed <= 5s) but expires
        # during the first slice, so the run completes as timed_out with
        # its best incumbent instead of being shed.
        scheduler = make_scheduler(clock=FakeClock(step=3.0))
        run = scheduler.submit(request(seed=0, budget=30, deadline_s=5.0))
        scheduler.drain()
        assert run.state == DONE
        assert run.result["timed_out"] is True
        assert run.slices == 1
        assert run.result["generations"] < 30

    def test_no_deadline_never_times_out(self):
        scheduler = make_scheduler(clock=FakeClock(step=10.0))
        run = scheduler.submit(request(seed=0, budget=6, population=10))
        scheduler.drain()
        assert run.state == DONE and run.result["timed_out"] is False


class TestIntrospection:
    def test_stats_snapshot_shape(self):
        scheduler = make_scheduler()
        scheduler.submit(request())
        scheduler.drain()
        stats = scheduler.stats()
        assert stats["counters"]["service_requests"] == 1
        assert stats["counters"]["service_completed"] == 1
        assert stats["running"] == 0 and stats["queues"] == {}
        assert stats["cache"]["warm_misses"] == 1
        assert "service_latency_p50_ms" in stats["derived"]

    def test_service_tracer_sees_admission_and_completion(self):
        recorder = MemoryRecorder()
        scheduler = make_scheduler(tracer=Tracer([recorder]))
        scheduler.submit(request())
        scheduler.drain()
        kinds = [e.kind for e in recorder.events]
        assert kinds[0] == "service-admitted"
        assert kinds[-1] == "service-completed"
        assert "service-slice" in kinds

    def test_cold_cache_scheduler_never_warms(self):
        metrics = MetricsRegistry()
        scheduler = make_scheduler(
            metrics=metrics, engine_cache=EngineCache(enabled=False, metrics=metrics)
        )
        for seed in (1, 1):
            scheduler.submit(request(seed=seed))
        scheduler.drain()
        assert metrics.counters["service_warm_misses"].value == 2
        assert "service_warm_hits" not in metrics.counters


class TestServicePool:
    def test_pool_completes_all_requests(self):
        scheduler = make_scheduler(queue_cap=10)
        runs = [scheduler.submit(request(seed=s, budget=10)) for s in range(5)]
        with ServicePool(scheduler, workers=3):
            assert scheduler.wait_idle(timeout=120)
        assert all(run.state == DONE for run in runs)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ServicePool(make_scheduler(), workers=0)

    def test_invalid_idle_wait_rejected(self):
        with pytest.raises(ValueError):
            ServicePool(make_scheduler(), idle_wait=0.0)

    def test_idle_pool_picks_up_submission_without_polling(self):
        # idle_wait is deliberately far longer than the whole test: a
        # parked worker must be woken by submit's notify, not by sleeping
        # out the idle bound (the pre-fix behaviour polled every second).
        scheduler = make_scheduler()
        with ServicePool(scheduler, workers=2, idle_wait=60.0):
            time.sleep(0.3)  # let both workers park on the condition
            t0 = time.monotonic()
            run = scheduler.submit(request(budget=5, population=10))
            assert scheduler.wait_idle(timeout=30)
            elapsed = time.monotonic() - t0
        assert run.state == DONE
        assert elapsed < 10.0  # solve time only — nowhere near idle_wait

    def test_stop_wakes_parked_workers_promptly(self):
        pool = ServicePool(make_scheduler(), workers=2, idle_wait=60.0)
        pool.start()
        time.sleep(0.3)  # workers park with nothing queued
        t0 = time.monotonic()
        pool.stop()
        assert time.monotonic() - t0 < 5.0  # wake_all, not idle_wait


class TestDecodeBackendFrames:
    def test_engine_path_tags_result_as_engine(self):
        frames = []
        scheduler = make_scheduler()
        scheduler.submit(request(), subscriber=frames.append)
        scheduler.drain()
        assert frames[-1]["type"] == "result"
        assert frames[-1]["backend"] == "engine"

    def test_vector_request_reports_resolved_backend(self):
        frames = []
        scheduler = make_scheduler()
        scheduler.submit(
            request(vector=True, backend="numpy"), subscriber=frames.append
        )
        scheduler.drain()
        assert frames[-1]["backend"] == "numpy"

    def test_vector_auto_backend_resolves_by_probe(self):
        frames = []
        scheduler = make_scheduler()
        scheduler.submit(request(vector=True), subscriber=frames.append)
        scheduler.drain()
        expected = "fused" if numba_available() else "numpy"
        assert frames[-1]["backend"] == expected

    @pytest.mark.skipif(numba_available(), reason="numba installed")
    def test_fused_without_numba_fails_with_error_frame(self):
        frames = []
        scheduler = make_scheduler()
        run = scheduler.submit(
            request(vector=True, backend="fused"), subscriber=frames.append
        )
        scheduler.drain()
        assert run.state == FAILED
        assert frames[-1]["type"] == "error"
        assert "numba" in frames[-1]["message"]
