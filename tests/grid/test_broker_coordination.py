"""Tests for the broker and the coordination service with replanning."""

import pytest

from repro.core import GAConfig, GAPlanner
from repro.grid import (
    CoordinationService,
    DataProduct,
    GridEvent,
    ResourceBroker,
    greedy_grid_planner,
    imaging_pipeline,
)


class TestBroker:
    def test_discover_respects_requirements(self):
        onto, _ = imaging_pipeline()
        broker = ResourceBroker(onto)
        hosts = {m.name for m in broker.discover("analyze")}  # 16 GB min
        assert "lab-ws" not in hosts
        assert "hpc-1" in hosts

    def test_offers_ranked_by_total_time(self):
        onto, _ = imaging_pipeline()
        broker = ResourceBroker(onto)
        offers = broker.offers("fft")
        totals = [o.total_s for o in offers]
        assert totals == sorted(totals)
        assert offers[0].machine in ("hpc-1", "hpc-2")  # fastest machines

    def test_staging_cost_shifts_ranking(self):
        onto, _ = imaging_pipeline()
        broker = ResourceBroker(onto)
        frames = DataProduct.make("equalized")
        # Data sits on campus-a: staging to hpc is cheap (10 Gb/s), but
        # staying on campus costs nothing to stage.
        offers = broker.offers("highpass", input_locations=[(frames, "campus-a")])
        by_machine = {o.machine: o for o in offers}
        assert by_machine["campus-a"].staging_s == 0.0
        assert by_machine["hpc-1"].staging_s > 0.0

    def test_load_penalty(self):
        onto, _ = imaging_pipeline()
        onto.topology.set_load("hpc-1", 50.0)
        broker = ResourceBroker(onto, load_penalty=1000.0)
        best = broker.best_offer("fft")
        assert best.machine != "hpc-1"

    def test_failed_machines_excluded(self):
        onto, _ = imaging_pipeline()
        for m in ("hpc-1", "hpc-2", "campus-a", "campus-b"):
            onto.topology.fail_machine(m)
        assert broker_has_no_offer(onto, "fft")

    def test_negative_penalty_rejected(self):
        onto, _ = imaging_pipeline()
        with pytest.raises(ValueError):
            ResourceBroker(onto, load_penalty=-1)


def broker_has_no_offer(onto, program):
    return ResourceBroker(onto).best_offer(program) is None


class TestCoordination:
    def test_plain_execution_no_events(self):
        onto, domain = imaging_pipeline()
        svc = CoordinationService(onto, greedy_grid_planner())
        report = svc.run(domain)
        assert report.success
        assert report.replans == 0
        assert domain.is_goal(report.final_placements)
        assert report.total_makespan > 0

    def test_replans_after_failure(self):
        onto, domain = imaging_pipeline()
        svc = CoordinationService(onto, greedy_grid_planner(), max_replans=3)
        report = svc.run(domain, events=[GridEvent(time=2.0, kind="fail", machine="hpc-1")])
        assert report.success
        assert report.replans >= 1
        # The failed machine must not host anything in the final attempt.
        last = report.attempts[-1]
        machines = {rec.machine for rec in last.result.trace if rec.status == "done"}
        assert "hpc-1" not in machines

    def test_replan_budget_exhausted(self):
        onto, domain = imaging_pipeline()
        # Kill everything capable of running the 16 GB stages: planning
        # becomes impossible and the service must give up cleanly.
        events = [
            GridEvent(time=0.5, kind="fail", machine=m)
            for m in ("campus-a", "campus-b", "hpc-1", "hpc-2")
        ]
        svc = CoordinationService(onto, greedy_grid_planner(max_expansions=20_000), max_replans=2)
        report = svc.run(domain, events=events)
        assert not report.success

    def test_goal_already_met_is_noop(self):
        onto, domain = imaging_pipeline()
        report_product = DataProduct.make("report")
        from repro.grid import GridWorkflowDomain

        done = GridWorkflowDomain(
            onto,
            list(domain.initial_state) + [(report_product, "lab-ws")],
            goal=list(domain.goal),
        )
        svc = CoordinationService(onto, greedy_grid_planner())
        report = svc.run(done)
        assert report.success
        assert report.attempts == []

    def test_ga_planner_drives_coordination(self):
        onto, domain = imaging_pipeline()

        def ga_planner(d):
            cfg = GAConfig(population_size=50, generations=40, max_len=20, init_length=8)
            outcome = GAPlanner(d, cfg, multiphase=3, seed=11).solve()
            return outcome.plan if outcome.solved else None

        svc = CoordinationService(onto, ga_planner)
        report = svc.run(domain)
        assert report.success
        assert report.planning_seconds > 0

    def test_negative_max_replans_rejected(self):
        onto, _ = imaging_pipeline()
        with pytest.raises(ValueError):
            CoordinationService(onto, greedy_grid_planner(), max_replans=-1)
