"""Tests for DOT export and small grid utilities."""

import pytest

from repro.grid import Transfer, imaging_pipeline, plan_to_activity_graph, to_dot
from repro.planning.search import goal_gap, greedy_best_first


@pytest.fixture
def graph():
    onto, domain = imaging_pipeline()
    r = greedy_best_first(domain, goal_gap(domain, scale=100.0), max_expansions=100_000)
    return domain, plan_to_activity_graph(domain, r.plan)


class TestToDot:
    def test_valid_structure(self, graph):
        domain, ag = graph
        dot = to_dot(ag)
        assert dot.startswith("digraph activity {")
        assert dot.endswith("}")
        # One node line per activity, one edge line per dependency (labels
        # also contain "->" glyphs, so match whole edge statements).
        import re

        assert dot.count("[shape=") == len(ag)
        edges = re.findall(r"^  a\d+ -> a\d+;$", dot, flags=re.MULTILINE)
        assert len(edges) == ag.graph.number_of_edges()

    def test_node_shapes_by_kind(self, graph):
        domain, ag = graph
        dot = to_dot(ag)
        runs = sum(1 for a in ag.activities() if a.kind == "run")
        transfers = len(ag) - runs
        assert dot.count("shape=box") == runs
        assert dot.count("shape=ellipse") == transfers

    def test_quotes_escaped(self, graph):
        domain, ag = graph
        assert '\\"' not in to_dot(ag)


class TestDomainExecute:
    def test_execute_rejects_invalid_op(self):
        onto, domain = imaging_pipeline()
        raw = next(iter(domain.initial_state))[0]
        bogus = Transfer(raw, "hpc-1", "hpc-2")  # product is not at hpc-1
        with pytest.raises(ValueError, match="not valid"):
            domain.execute([bogus])

    def test_plan_cost_sums(self):
        onto, domain = imaging_pipeline()
        ops = domain.valid_operations(domain.initial_state)[:2]
        total = domain.plan_cost(ops)
        assert total == pytest.approx(sum(domain.operation_cost(op) for op in ops))
