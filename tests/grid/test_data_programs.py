"""Tests for data products, provenance, and program specs."""

import pytest

from repro.grid import DataProduct, DataType, InputSpec, Machine, OutputSpec, ProgramSpec
from repro.grid.data import ProvenanceStep


class TestDataProduct:
    def test_make_freezes_attrs(self):
        p = DataProduct.make("img", attrs={"b": 2, "a": 1})
        assert p.attrs == (("a", 1), ("b", 2))

    def test_attr_lookup(self):
        p = DataProduct.make("img", attrs={"resolution": 1024})
        assert p.attr("resolution") == 1024
        assert p.attr("missing", 7) == 7

    def test_with_attrs_merges(self):
        p = DataProduct.make("img", attrs={"a": 1}).with_attrs(b=2, a=3)
        assert p.attr("a") == 3 and p.attr("b") == 2

    def test_derived_extends_history(self):
        raw = DataProduct.make("raw", attrs={"resolution": 512})
        eq = raw.derived("equalized", program="histeq", params={"bins": 256})
        assert eq.dtype == "equalized"
        assert eq.processed_by("histeq")
        assert not raw.processed_by("histeq")
        assert eq.history[-1] == ProvenanceStep("histeq", (("bins", 256),))

    def test_derived_inherits_attrs_by_default(self):
        raw = DataProduct.make("raw", attrs={"resolution": 512})
        out = raw.derived("x", program="p")
        assert out.attr("resolution") == 512

    def test_hashable_and_equal(self):
        a = DataProduct.make("t", attrs={"k": 1})
        b = DataProduct.make("t", attrs={"k": 1})
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_str_shows_genealogy(self):
        p = DataProduct.make("raw").derived("x", "prog1").derived("y", "prog2")
        assert "prog1" in str(p) and "prog2" in str(p)


class TestDataType:
    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            DataType("t", volume_mb=-1)


class TestInputSpec:
    def test_type_must_match(self):
        spec = InputSpec(dtype="img")
        assert spec.accepts(DataProduct.make("img"))
        assert not spec.accepts(DataProduct.make("other"))

    def test_min_attrs(self):
        spec = InputSpec(dtype="img", min_attrs=(("resolution", 512),))
        assert spec.accepts(DataProduct.make("img", attrs={"resolution": 1024}))
        assert not spec.accepts(DataProduct.make("img", attrs={"resolution": 128}))
        assert not spec.accepts(DataProduct.make("img"))  # attribute missing

    def test_history_requirements(self):
        spec = InputSpec(dtype="img", requires_history=("histeq",), forbids_history=("lowpass",))
        good = DataProduct.make("raw").derived("img", "histeq")
        assert spec.accepts(good)
        assert not spec.accepts(DataProduct.make("img"))  # histeq missing
        poisoned = good.derived("img", "lowpass")
        assert not spec.accepts(poisoned)


class TestProgramSpec:
    def _prog(self, **kw):
        base = dict(
            name="p",
            inputs=(InputSpec(dtype="in"),),
            outputs=(OutputSpec(dtype="out"),),
            flops=100.0,
            min_memory_gb=8,
        )
        base.update(kw)
        return ProgramSpec(**base)

    def test_validation(self):
        with pytest.raises(ValueError, match="flops"):
            self._prog(flops=0)
        with pytest.raises(ValueError, match="output"):
            self._prog(outputs=())

    def test_machine_ok(self):
        p = self._prog()
        assert p.machine_ok(Machine("m", site="s", speed=1, memory_gb=16))
        assert not p.machine_ok(Machine("m", site="s", speed=1, memory_gb=4))
        assert not p.machine_ok(Machine("m", site="s", speed=1, memory_gb=16).failed())

    def test_match_inputs(self):
        p = self._prog()
        assert p.match_inputs([DataProduct.make("in")]) is not None
        assert p.match_inputs([DataProduct.make("other")]) is None
        assert p.match_inputs([]) is None

    def test_match_inputs_no_double_use(self):
        p = self._prog(inputs=(InputSpec(dtype="in"), InputSpec(dtype="in")))
        one = DataProduct.make("in")
        assert p.match_inputs([one]) is None  # one product cannot fill two slots
        two = DataProduct.make("in", attrs={"i": 2})
        assert p.match_inputs([one, two]) is not None

    def test_match_is_deterministic(self):
        p = self._prog()
        pool = [DataProduct.make("in", attrs={"i": i}) for i in range(3)]
        assert p.match_inputs(pool) == p.match_inputs(list(reversed(pool)))

    def test_produce_provenance(self):
        p = self._prog(params=(("alpha", 2),))
        raw = DataProduct.make("in", attrs={"resolution": 512})
        (out,) = p.produce((raw,))
        assert out.dtype == "out"
        assert out.processed_by("p")
        assert out.attr("resolution") == 512  # inherited

    def test_source_program_produces_from_nothing(self):
        p = ProgramSpec(
            name="gen", inputs=(), outputs=(OutputSpec(dtype="out", attrs=(("v", 1),)),)
        )
        (out,) = p.produce(())
        assert out.dtype == "out" and out.attr("v") == 1

    def test_runtime_on(self):
        p = self._prog(flops=1000)
        m = Machine("m", site="s", speed=500, memory_gb=16)
        assert p.runtime_on(m) == pytest.approx(2.0)
        assert p.runtime_on(m.with_load(1.0)) == pytest.approx(4.0)
