"""Fault tolerance in the grid layer: broker retry, link faults, replanning."""

import pytest

from repro.grid import (
    CoordinationService,
    GridEvent,
    GridSimulator,
    PlacementError,
    ResourceBroker,
    RetryPolicy,
    Transfer,
    greedy_grid_planner,
    imaging_pipeline,
    plan_to_activity_graph,
)
from repro.obs import MetricsRegistry, Tracer
from repro.obs.sinks import MemoryRecorder
from repro.planning.search import goal_gap, greedy_best_first


@pytest.fixture
def onto_domain():
    return imaging_pipeline()


def _solved_plan(domain):
    r = greedy_best_first(domain, goal_gap(domain, scale=100.0), max_expansions=100_000)
    assert r.solved
    return r.plan


class TestBrokerErrors:
    def test_unknown_program_is_a_clear_value_error(self, onto_domain):
        onto, _ = onto_domain
        broker = ResourceBroker(onto)
        with pytest.raises(ValueError, match="unknown program 'warp-drive'"):
            broker.offers("warp-drive")
        # The message lists the known programs so typos are self-diagnosing.
        with pytest.raises(ValueError, match="fft"):
            broker.offers("warp-drive")


class TestPlaceWithRetry:
    def test_first_offer_success(self, onto_domain):
        onto, _ = onto_domain
        broker = ResourceBroker(onto)
        best = broker.best_offer("fft")
        placement = broker.place_with_retry("fft", attempt=lambda offer: True)
        assert placement.offer.machine == best.machine
        assert placement.attempts == 1
        assert placement.backoff_s == 0.0

    def test_falls_back_to_next_best_offer(self, onto_domain):
        onto, _ = onto_domain
        broker = ResourceBroker(onto)
        ranked = broker.offers("fft")
        dead = ranked[0].machine
        rec = MemoryRecorder()
        metrics = MetricsRegistry()
        placement = broker.place_with_retry(
            "fft",
            attempt=lambda offer: offer.machine != dead,
            tracer=Tracer([rec]),
            metrics=metrics,
        )
        assert placement.offer.machine == ranked[1].machine
        assert placement.attempts == 2
        assert placement.backoff_s > 0.0
        retries = [e for e in rec.events if e.kind == "retry"]
        assert len(retries) == 1
        assert retries[0].component == "broker"
        assert dead in retries[0].reason
        assert metrics.counter("retries").value == 1

    def test_attempt_exceptions_count_as_failures(self, onto_domain):
        onto, _ = onto_domain
        broker = ResourceBroker(onto)
        calls = []

        def flaky(offer):
            calls.append(offer.machine)
            if len(calls) == 1:
                raise ConnectionError("machine went away")
            return True

        placement = broker.place_with_retry("fft", attempt=flaky)
        assert placement.attempts == 2
        assert "went away" not in placement.offer.machine

    def test_exhaustion_raises_placement_error(self, onto_domain):
        onto, _ = onto_domain
        broker = ResourceBroker(onto)
        policy = RetryPolicy(max_attempts=2)
        with pytest.raises(PlacementError, match="2 attempt"):
            broker.place_with_retry("fft", attempt=lambda offer: False, policy=policy)

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=4.0)
        assert [policy.backoff_s(i) for i in range(4)] == [1.0, 2.0, 4.0, 4.0]


class TestBackoffJitter:
    def test_full_jitter_stays_inside_envelope(self):
        import numpy as np

        policy = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=4.0)
        rng = np.random.default_rng(0)
        for index in range(4):
            envelope = policy.backoff_s(index)
            draws = [policy.jittered_backoff_s(index, rng) for _ in range(50)]
            assert all(0.0 <= d <= envelope for d in draws)
            # Full jitter actually spreads: not every draw equals the envelope.
            assert len({round(d, 6) for d in draws}) > 1

    def test_jitter_is_seed_deterministic(self):
        import numpy as np

        policy = RetryPolicy()
        a = [policy.jittered_backoff_s(i, np.random.default_rng(7)) for i in range(3)]
        b = [policy.jittered_backoff_s(i, np.random.default_rng(7)) for i in range(3)]
        assert a == b

    def test_no_rng_keeps_deterministic_envelope(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=4.0)
        assert [policy.jittered_backoff_s(i) for i in range(4)] == [1.0, 2.0, 4.0, 4.0]

    def test_jitter_disabled_ignores_rng(self):
        import numpy as np

        policy = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=4.0, jitter=False)
        rng = np.random.default_rng(0)
        assert [policy.jittered_backoff_s(i, rng) for i in range(4)] == [1.0, 2.0, 4.0, 4.0]

    def test_place_with_retry_observes_attempts_and_backoff(self, onto_domain):
        import numpy as np

        onto, _ = onto_domain
        broker = ResourceBroker(onto)
        ranked = broker.offers("fft")
        dead = ranked[0].machine
        metrics = MetricsRegistry()
        placement = broker.place_with_retry(
            "fft",
            attempt=lambda offer: offer.machine != dead,
            rng=np.random.default_rng(3),
            tracer=Tracer([]),
            metrics=metrics,
        )
        assert placement.attempts == 2
        assert metrics.counter("placement_attempts").value == 2
        assert metrics.counter("placement_backoff_s").value == placement.backoff_s
        # Jittered: strictly inside the half-open envelope with probability 1.
        assert 0.0 <= placement.backoff_s <= RetryPolicy().backoff_s(0)


class TestLinkFaults:
    def test_degrade_slows_transfers(self, onto_domain):
        onto, _ = onto_domain
        topo = onto.topology
        before = topo.transfer_time("lab-ws", "campus-a", 1000.0)
        topo.degrade_link("lab", "campus", 4.0)
        assert topo.transfer_time("lab-ws", "campus-a", 1000.0) > before
        topo.restore_link("lab", "campus")
        assert topo.transfer_time("lab-ws", "campus-a", 1000.0) == pytest.approx(before)

    def test_partition_and_restore(self, onto_domain):
        onto, _ = onto_domain
        topo = onto.topology
        direct = topo.bandwidth("lab-ws", "campus-a")
        topo.partition_link("lab", "campus")
        rerouted = topo.bandwidth("lab-ws", "campus-a")
        # Traffic reroutes over the slow lab--hpc path instead of vanishing.
        assert rerouted is None or rerouted < direct
        topo.restore_link("lab", "campus")
        assert topo.bandwidth("lab-ws", "campus-a") == pytest.approx(direct)

    def test_degrade_validates_factor(self, onto_domain):
        onto, _ = onto_domain
        with pytest.raises(ValueError, match="factor"):
            onto.topology.degrade_link("lab", "campus", 0.5)

    def test_link_pairs_include_partitioned_links(self, onto_domain):
        onto, _ = onto_domain
        topo = onto.topology
        pairs = set(topo.link_pairs())
        topo.partition_link("lab", "campus")
        assert set(topo.link_pairs()) == pairs  # restorable, so still listed


class TestSimulatorFaultEvents:
    def test_link_degrade_mid_run_emits_fault_event(self, onto_domain):
        onto, domain = onto_domain
        plan = _solved_plan(domain)
        graph = plan_to_activity_graph(domain, plan)
        rec = MemoryRecorder()
        metrics = MetricsRegistry()
        sim = GridSimulator(
            onto,
            events=[GridEvent(0.5, "link-degrade", "lab", 8.0, "campus")],
            tracer=Tracer([rec]),
            metrics=metrics,
        )
        result = sim.execute(graph, domain.initial_state)
        assert result.success
        faults = [e for e in rec.events if e.kind == "fault-injected"]
        assert len(faults) == 1
        assert faults[0].fault == "link-degrade"
        assert faults[0].target == "lab--campus"
        assert metrics.counter("faults_injected").value == 1

    def test_partition_between_enqueue_and_start_fails_cleanly(self, onto_domain):
        onto, domain = onto_domain
        raw = next(iter(domain.initial_state))[0]
        # The second hop only becomes ready once the first completes; by
        # then the partitions below have isolated the campus site entirely.
        plan = (
            Transfer(raw, "lab-ws", "campus-a"),
            Transfer(raw, "campus-a", "hpc-1"),
        )
        graph = plan_to_activity_graph(domain, plan)
        sim = GridSimulator(
            onto,
            events=[
                GridEvent(1e-6, "partition", "campus", peer="lab"),
                GridEvent(1e-6, "partition", "campus", peer="hpc"),
            ],
        )
        result = sim.execute(graph, domain.initial_state)
        assert not result.success
        assert result.failed  # marked failed, not a simulator crash

    def test_machine_event_kinds_unchanged(self, onto_domain):
        # Back-compat: positional GridEvent construction still works.
        ev = GridEvent(2.0, "fail", "hpc-1")
        assert ev.target == "hpc-1"
        with pytest.raises(ValueError, match="peer"):
            GridEvent(2.0, "partition", "lab")


class TestCoordinationReplan:
    def test_replan_emits_event_and_counter(self, onto_domain):
        onto, domain = onto_domain
        rec = MemoryRecorder()
        metrics = MetricsRegistry()
        service = CoordinationService(
            onto,
            greedy_grid_planner(),
            max_replans=3,
            tracer=Tracer([rec]),
            metrics=metrics,
        )
        report = service.run(domain, events=[GridEvent(2.0, "fail", "hpc-1")])
        assert report.success
        assert report.replans >= 1
        replan_events = [e for e in rec.events if e.kind == "replan"]
        assert len(replan_events) == metrics.counter("replans").value >= 1
        assert replan_events[0].reason == "grid event aborted execution"
        assert replan_events[0].completed >= 0
