"""Tests for the grid-workflow planning domain and ontology."""

import pytest

from repro.core import GAConfig, GAPlanner
from repro.grid import (
    DataProduct,
    DataType,
    GridWorkflowDomain,
    InputSpec,
    Ontology,
    OutputSpec,
    ProgramSpec,
    RunProgram,
    Transfer,
    imaging_pipeline,
    small_heterogeneous_grid,
)
from repro.planning.search import goal_gap, greedy_best_first


class TestOntology:
    def test_program_must_reference_known_types(self):
        onto = Ontology(small_heterogeneous_grid())
        with pytest.raises(ValueError, match="unknown data type"):
            onto.register_program(
                ProgramSpec(name="p", inputs=(), outputs=(OutputSpec(dtype="zzz"),))
            )

    def test_duplicate_registration_rejected(self):
        onto = Ontology(small_heterogeneous_grid())
        onto.register_data_type(DataType("t"))
        with pytest.raises(ValueError, match="duplicate"):
            onto.register_data_type(DataType("t"))

    def test_hosts_for_filters_by_requirements(self):
        onto, _ = imaging_pipeline()
        hosts = {m.name for m in onto.hosts_for("fft")}  # needs 16 GB
        assert hosts == {"campus-a", "campus-b", "hpc-1", "hpc-2"}

    def test_hosts_exclude_failed_machines(self):
        onto, _ = imaging_pipeline()
        onto.topology.fail_machine("campus-a")
        hosts = {m.name for m in onto.hosts_for("fft")}
        assert "campus-a" not in hosts

    def test_producers_of(self):
        onto, _ = imaging_pipeline()
        producers = {p.name for p in onto.producers_of("filtered")}
        assert producers == {"highpass", "lowpass"}  # two service versions

    def test_volume_of_unknown_type(self):
        onto, _ = imaging_pipeline()
        with pytest.raises(ValueError, match="unknown data type"):
            onto.volume_of("nope")


class TestGridWorkflowDomain:
    def test_goal_validation(self):
        onto, _ = imaging_pipeline()
        raw = DataProduct.make("raw-frames", attrs={"resolution": 1024})
        with pytest.raises(ValueError, match="unknown data type"):
            GridWorkflowDomain(onto, [(raw, "lab-ws")], goal=[("zzz", "lab-ws")])
        with pytest.raises(ValueError, match="unknown machine"):
            GridWorkflowDomain(onto, [(raw, "lab-ws")], goal=[("report", "zzz")])
        with pytest.raises(ValueError, match="at least one"):
            GridWorkflowDomain(onto, [(raw, "lab-ws")], goal=[])

    def test_initial_operations(self):
        _, domain = imaging_pipeline()
        ops = domain.valid_operations(domain.initial_state)
        runs = [op for op in ops if isinstance(op, RunProgram)]
        xfers = [op for op in ops if isinstance(op, Transfer)]
        # Only histeq can run (on the lab ws where the raw frames are,
        # which has 8 GB: histeq needs 4 GB).
        assert {r.program for r in runs} == {"histeq"}
        assert {r.machine for r in runs} == {"lab-ws"}
        # Raw frames can be shipped to any of the four other machines.
        assert len(xfers) == 4

    def test_operation_ordering_deterministic(self):
        _, domain = imaging_pipeline()
        a = [str(op) for op in domain.valid_operations(domain.initial_state)]
        b = [str(op) for op in domain.valid_operations(domain.initial_state)]
        assert a == b

    def test_run_costs_are_heterogeneous(self):
        _, domain = imaging_pipeline()
        state = domain.initial_state
        # Transfer raw frames to both campus-a and hpc-1 and compare histeq cost.
        raw = next(iter(state))[0]
        state = domain.apply(state, Transfer(raw, "lab-ws", "campus-a"))
        state = domain.apply(state, Transfer(raw, "lab-ws", "hpc-1"))
        runs = {
            op.machine: domain.operation_cost(op)
            for op in domain.valid_operations(state)
            if isinstance(op, RunProgram) and op.program == "histeq"
        }
        assert runs["hpc-1"] < runs["campus-a"] < runs["lab-ws"]

    def test_transfer_cost_uses_topology(self):
        _, domain = imaging_pipeline()
        raw = next(iter(domain.initial_state))[0]
        slow = domain.operation_cost(Transfer(raw, "lab-ws", "hpc-1"))
        fast = domain.operation_cost(Transfer(raw, "lab-ws", "campus-a"))
        assert fast < slow  # lab->campus is 1 Gb/s, lab->hpc direct is 100 Mb/s

    def test_goal_fitness_partial_credit(self):
        onto, domain = imaging_pipeline()
        assert domain.goal_fitness(domain.initial_state) == 0.0
        report = DataProduct.make("report")
        # Report exists somewhere (not at the lab): half credit.
        state = frozenset(domain.initial_state) | {(report, "hpc-1")}
        assert domain.goal_fitness(state) == pytest.approx(0.5)
        # Report delivered: full credit.
        state = state | {(report, "lab-ws")}
        assert domain.goal_fitness(state) == 1.0
        assert domain.is_goal(state)

    def test_genealogy_precondition_blocks_lowpass_route(self):
        """The analyze program must reject spectra whose genealogy includes
        the low-pass filter (the paper's footnote scenario)."""
        onto, domain = imaging_pipeline()
        raw = next(iter(domain.initial_state))[0]
        state = domain.initial_state
        state = domain.apply(state, Transfer(raw, "lab-ws", "hpc-1"))
        run = lambda prog: next(
            op for op in domain.valid_operations(state)
            if isinstance(op, RunProgram) and op.program == prog and op.machine == "hpc-1"
        )
        state = domain.apply(state, run("histeq"))
        state = domain.apply(state, run("lowpass"))  # the poisoned branch
        state = domain.apply(state, run("fft"))
        # No analyze operation may be offered anywhere: the only spectrum
        # was low-pass filtered.
        analyzes = [
            op for op in domain.valid_operations(state)
            if isinstance(op, RunProgram) and op.program == "analyze"
        ]
        assert analyzes == []

    def test_rerun_of_satisfied_program_pruned(self):
        _, domain = imaging_pipeline()
        raw = next(iter(domain.initial_state))[0]
        state = domain.initial_state
        histeq = next(
            op for op in domain.valid_operations(state) if isinstance(op, RunProgram)
        )
        state = domain.apply(state, histeq)
        again = [
            op for op in domain.valid_operations(state)
            if isinstance(op, RunProgram) and op.program == "histeq" and op.machine == "lab-ws"
        ]
        assert again == []

    def test_transfer_fanout_cap(self):
        onto, _ = imaging_pipeline()
        raw = DataProduct.make("raw-frames", attrs={"resolution": 1024})
        domain = GridWorkflowDomain(
            onto, [(raw, "lab-ws")], goal=[("report", "lab-ws")],
            max_transfers_per_product=1,
        )
        ops = domain.valid_operations(domain.initial_state)
        assert not any(isinstance(op, Transfer) for op in ops)

    def test_greedy_plan_solves(self):
        _, domain = imaging_pipeline()
        r = greedy_best_first(domain, goal_gap(domain, scale=100.0), max_expansions=100_000)
        assert r.solved
        state = domain.initial_state
        for op in r.plan:
            state = domain.apply(state, op)
        assert domain.is_goal(state)

    def test_ga_plans_the_pipeline(self):
        _, domain = imaging_pipeline()
        cfg = GAConfig(population_size=60, generations=60, max_len=24, init_length=8)
        outcome = GAPlanner(domain, cfg, multiphase=3, seed=3).solve()
        assert outcome.solved
