"""Tests for the replica catalog (persistent-storage service)."""

import pytest

from repro.grid import DataProduct, ReplicaCatalog, StorageFullError, imaging_pipeline


@pytest.fixture
def catalog():
    onto, domain = imaging_pipeline()
    cat = ReplicaCatalog(onto)
    return onto, domain, cat


class TestRegistration:
    def test_register_and_locate(self, catalog):
        onto, domain, cat = catalog
        raw = next(iter(domain.initial_state))[0]
        cat.register(raw, "lab-ws")
        assert cat.locations(raw) == ["lab-ws"]
        assert raw in cat.holdings("lab-ws")

    def test_idempotent(self, catalog):
        onto, domain, cat = catalog
        raw = next(iter(domain.initial_state))[0]
        cat.register(raw, "lab-ws")
        used = cat.used_mb("lab-ws")
        cat.register(raw, "lab-ws")
        assert cat.used_mb("lab-ws") == used

    def test_unknown_machine(self, catalog):
        _, domain, cat = catalog
        raw = next(iter(domain.initial_state))[0]
        with pytest.raises(ValueError, match="unknown machine"):
            cat.register(raw, "nowhere")

    def test_capacity_enforced(self, catalog):
        onto, domain, cat = catalog
        # lab-ws has 1 TB = 1e6 MB; raw frames are 2000 MB each.
        for i in range(500):
            cat.register(DataProduct.make("raw-frames", attrs={"i": i}), "lab-ws")
        with pytest.raises(StorageFullError):
            cat.register(DataProduct.make("raw-frames", attrs={"i": 999}), "lab-ws")

    def test_register_placements_bulk(self, catalog):
        onto, domain, cat = catalog
        cat.register_placements(domain.initial_state)
        assert cat.placements() == frozenset(domain.initial_state)


class TestEviction:
    def test_evict_frees_space(self, catalog):
        onto, domain, cat = catalog
        raw = next(iter(domain.initial_state))[0]
        cat.register(raw, "lab-ws")
        cat.register(raw, "campus-a")
        assert cat.evict(raw, "campus-a")
        assert cat.used_mb("campus-a") == 0.0
        assert cat.locations(raw) == ["lab-ws"]

    def test_last_replica_protected(self, catalog):
        onto, domain, cat = catalog
        raw = next(iter(domain.initial_state))[0]
        cat.register(raw, "lab-ws")
        assert not cat.evict(raw, "lab-ws")
        assert cat.locations(raw) == ["lab-ws"]

    def test_evict_missing_is_false(self, catalog):
        onto, domain, cat = catalog
        raw = next(iter(domain.initial_state))[0]
        assert not cat.evict(raw, "lab-ws")


class TestNearestReplica:
    def test_prefers_local(self, catalog):
        onto, domain, cat = catalog
        raw = next(iter(domain.initial_state))[0]
        cat.register(raw, "lab-ws")
        cat.register(raw, "hpc-1")
        src, t = cat.nearest_replica(raw, "hpc-2")
        assert src == "hpc-1"  # same site: local bandwidth
        assert t < 5.0  # 2 GB at 10 Gb/s ≈ 1.6 s, vs 160 s from the lab

    def test_skips_failed_machines(self, catalog):
        onto, domain, cat = catalog
        raw = next(iter(domain.initial_state))[0]
        cat.register(raw, "lab-ws")
        cat.register(raw, "hpc-1")
        onto.topology.fail_machine("hpc-1")
        src, _t = cat.nearest_replica(raw, "hpc-2")
        assert src == "lab-ws"

    def test_none_when_absent(self, catalog):
        onto, domain, cat = catalog
        assert cat.nearest_replica(DataProduct.make("report"), "lab-ws") is None

    def test_zero_cost_on_same_machine(self, catalog):
        onto, domain, cat = catalog
        raw = next(iter(domain.initial_state))[0]
        cat.register(raw, "lab-ws")
        src, t = cat.nearest_replica(raw, "lab-ws")
        assert src == "lab-ws" and t == 0.0


class TestIntegrationWithExecution:
    def test_catalog_tracks_simulated_execution(self, catalog):
        from repro.grid import GridSimulator, plan_to_activity_graph
        from repro.planning.search import goal_gap, greedy_best_first

        onto, domain, cat = catalog
        r = greedy_best_first(domain, goal_gap(domain, scale=100.0), max_expansions=100_000)
        graph = plan_to_activity_graph(domain, r.plan)
        result = GridSimulator(onto).execute(graph, domain.initial_state)
        cat.register_placements(result.placements)
        report = DataProduct.make("report")
        # The analysis report exists somewhere and is locatable.
        produced = [p for p, m in result.placements if p.dtype == "report"]
        assert produced
        assert cat.locations(produced[0])
