"""Tests for activity-graph compilation and the discrete-event simulator."""

import pytest

from repro.grid import (
    GridEvent,
    GridSimulator,
    RunProgram,
    Transfer,
    imaging_pipeline,
    plan_to_activity_graph,
)
from repro.planning.search import goal_gap, greedy_best_first


@pytest.fixture
def pipeline_plan():
    onto, domain = imaging_pipeline()
    r = greedy_best_first(domain, goal_gap(domain, scale=100.0), max_expansions=100_000)
    assert r.solved
    return onto, domain, r.plan


class TestActivityGraph:
    def test_compilation_counts(self, pipeline_plan):
        _, domain, plan = pipeline_plan
        ag = plan_to_activity_graph(domain, plan)
        assert len(ag) == len(plan)
        kinds = {a.kind for a in ag.activities()}
        assert kinds == {"run", "transfer"}

    def test_dependencies_follow_data_flow(self, pipeline_plan):
        _, domain, plan = pipeline_plan
        ag = plan_to_activity_graph(domain, plan)
        # Every run activity must depend (transitively) on whatever produced
        # its inputs; here it suffices that topological order exists and the
        # first activity has no predecessors.
        order = ag.topological_order()
        assert ag.predecessors(order[0].id) == []
        # The last run in the pipeline consumes something produced earlier.
        runs = [a for a in ag.activities() if a.kind == "run"]
        assert any(ag.predecessors(a.id) for a in runs)

    def test_missing_producer_detected(self, pipeline_plan):
        onto, domain, plan = pipeline_plan
        # Drop the first step: a later consumer references a missing placement.
        with pytest.raises(ValueError, match="never produced"):
            plan_to_activity_graph(domain, plan[1:])

    def test_critical_path(self, pipeline_plan):
        onto, domain, plan = pipeline_plan
        ag = plan_to_activity_graph(domain, plan)
        sim = GridSimulator(onto)
        cp = ag.critical_path_length(sim._duration)
        assert cp > 0

    def test_independent_steps_unordered(self):
        onto, domain = imaging_pipeline()
        raw = next(iter(domain.initial_state))[0]
        plan = (
            Transfer(raw, "lab-ws", "campus-a"),
            Transfer(raw, "lab-ws", "hpc-1"),
        )
        ag = plan_to_activity_graph(domain, plan)
        assert ag.predecessors(0) == [] and ag.predecessors(1) == []


class TestSimulator:
    def test_successful_execution(self, pipeline_plan):
        onto, domain, plan = pipeline_plan
        ag = plan_to_activity_graph(domain, plan)
        res = GridSimulator(onto).execute(ag, domain.initial_state)
        assert res.success
        assert res.makespan > 0
        assert len(res.completed) == len(ag)
        assert domain.is_goal(res.placements)

    def test_makespan_at_least_critical_path(self, pipeline_plan):
        onto, domain, plan = pipeline_plan
        ag = plan_to_activity_graph(domain, plan)
        sim = GridSimulator(onto)
        cp = ag.critical_path_length(sim._duration)
        res = sim.execute(ag, domain.initial_state)
        assert res.makespan >= cp - 1e-9

    def test_trace_times_ordered(self, pipeline_plan):
        onto, domain, plan = pipeline_plan
        ag = plan_to_activity_graph(domain, plan)
        res = GridSimulator(onto).execute(ag, domain.initial_state)
        for rec in res.trace:
            assert rec.end >= rec.start >= 0.0

    def test_failure_kills_machine_tasks(self, pipeline_plan):
        onto, domain, plan = pipeline_plan
        ag = plan_to_activity_graph(domain, plan)
        # Identify the machine that hosts the compute steps and fail it early.
        run_machines = {op.machine for op in plan if isinstance(op, RunProgram)}
        victim = sorted(run_machines)[0]
        events = [GridEvent(time=1.0, kind="fail", machine=victim)]
        res = GridSimulator(onto, events=events).execute(ag, domain.initial_state)
        assert not res.success
        assert res.failed

    def test_abort_on_failure(self, pipeline_plan):
        onto, domain, plan = pipeline_plan
        ag = plan_to_activity_graph(domain, plan)
        victim = sorted({op.machine for op in plan if isinstance(op, RunProgram)})[0]
        events = [GridEvent(time=1.0, kind="fail", machine=victim)]
        res = GridSimulator(onto, events=events).execute(
            ag, domain.initial_state, abort_on_failure=True
        )
        assert res.aborted_at == pytest.approx(1.0)

    def test_load_event_slows_execution(self):
        onto, domain = imaging_pipeline()
        r = greedy_best_first(domain, goal_gap(domain, scale=100.0), max_expansions=100_000)
        ag = plan_to_activity_graph(domain, r.plan)
        base = GridSimulator(onto).execute(ag, domain.initial_state)

        onto2, domain2 = imaging_pipeline()
        r2 = greedy_best_first(domain2, goal_gap(domain2, scale=100.0), max_expansions=100_000)
        ag2 = plan_to_activity_graph(domain2, r2.plan)
        # Overload every machine from t=0.
        events = [
            GridEvent(time=0.0, kind="load", machine=m, value=4.0)
            for m in onto2.topology.machine_names()
        ]
        loaded = GridSimulator(onto2, events=events).execute(ag2, domain2.initial_state)
        assert loaded.success
        assert loaded.makespan > base.makespan

    def test_restore_event(self):
        onto, domain = imaging_pipeline()
        r = greedy_best_first(domain, goal_gap(domain, scale=100.0), max_expansions=100_000)
        ag = plan_to_activity_graph(domain, r.plan)
        # Fail an unused machine and restore it: execution is unaffected.
        used = {op.machine for op in r.plan if isinstance(op, RunProgram)}
        unused = next(m for m in onto.topology.machine_names() if m not in used)
        events = [
            GridEvent(time=0.5, kind="fail", machine=unused),
            GridEvent(time=1.0, kind="restore", machine=unused),
        ]
        res = GridSimulator(onto, events=events).execute(ag, domain.initial_state)
        assert res.success
        assert onto.topology.machines[unused].up

    def test_bad_event_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            GridEvent(time=0.0, kind="explode", machine="m")

    def test_negative_event_time_rejected(self):
        with pytest.raises(ValueError):
            GridEvent(time=-1.0, kind="fail", machine="m")

    def test_out_of_order_events_rejected(self):
        """The simulator refuses unsorted timelines instead of silently
        reordering them (a caller bug it used to paper over)."""
        onto, _domain = imaging_pipeline()
        machine = onto.topology.machine_names()[0]
        events = [
            GridEvent(time=2.0, kind="fail", machine=machine),
            GridEvent(time=1.0, kind="restore", machine=machine),
        ]
        with pytest.raises(ValueError, match="non-decreasing"):
            GridSimulator(onto, events=events)

    def test_monotonicity_error_names_the_offending_pair(self):
        onto, _domain = imaging_pipeline()
        machine = onto.topology.machine_names()[0]
        events = [
            GridEvent(time=5.0, kind="fail", machine=machine),
            GridEvent(time=3.0, kind="restore", machine=machine),
        ]
        with pytest.raises(ValueError, match=r"t=3.*t=5|event 1"):
            GridSimulator(onto, events=events)

    def test_equal_times_allowed(self):
        onto, domain = imaging_pipeline()
        machine = onto.topology.machine_names()[0]
        unused = [
            m for m in onto.topology.machine_names()
            if m != machine
        ][0]
        events = [
            GridEvent(time=1.0, kind="fail", machine=unused),
            GridEvent(time=1.0, kind="restore", machine=unused),
        ]
        # Ties are fine: injection order breaks them, as documented.
        GridSimulator(onto, events=events)
