"""Property tests over random grids and pipelines (the whole grid stack)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_rng
from repro.grid import GridSimulator, plan_to_activity_graph
from repro.grid.generators import random_grid, random_pipeline
from repro.planning.search import goal_gap, greedy_best_first


class TestRandomGrid:
    @given(st.integers(0, 10_000), st.integers(1, 4), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_all_machine_pairs_connected(self, seed, n_sites, per_site):
        topo = random_grid(make_rng(seed), n_sites=n_sites, machines_per_site=per_site)
        names = topo.machine_names()
        assert len(names) == n_sites * per_site
        for a in names:
            for b in names:
                assert topo.bandwidth(a, b) is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            random_grid(make_rng(0), n_sites=0)


class TestRandomPipeline:
    @given(st.integers(0, 10_000), st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_generated_pipelines_are_plannable_and_executable(self, seed, n_stages):
        """The headline whole-stack property: every generated pipeline can
        be planned greedily, compiled, and simulated to completion."""
        rng = make_rng(seed)
        onto, domain = random_pipeline(rng, n_stages=n_stages)
        result = greedy_best_first(
            domain, goal_gap(domain, scale=1000.0), max_expansions=100_000
        )
        assert result.solved, f"seed {seed}: pipeline not plannable"
        graph = plan_to_activity_graph(domain, result.plan)
        execution = GridSimulator(onto).execute(graph, domain.initial_state)
        assert execution.success
        assert domain.is_goal(execution.placements)
        assert execution.makespan > 0

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_goal_fitness_monotone_along_greedy_plan(self, seed):
        """Greedy plans never pass through fitness-1 states before the end
        and the final state always scores exactly 1."""
        rng = make_rng(seed)
        onto, domain = random_pipeline(rng, n_stages=3)
        result = greedy_best_first(
            domain, goal_gap(domain, scale=1000.0), max_expansions=100_000
        )
        assert result.solved
        state = domain.initial_state
        for op in result.plan[:-1]:
            state = domain.apply(state, op)
            assert not domain.is_goal(state)  # greedy stops at first goal
        state = domain.apply(state, result.plan[-1])
        assert domain.goal_fitness(state) == 1.0

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_ga_makes_progress_on_random_pipelines(self, seed):
        """The GA planner reaches at least half-credit on any generated
        pipeline with a tiny budget (it usually solves outright)."""
        from repro.core import GAConfig, GAPlanner

        rng = make_rng(seed)
        onto, domain = random_pipeline(rng, n_stages=2)
        cfg = GAConfig(population_size=40, generations=30, max_len=16, init_length=6)
        outcome = GAPlanner(domain, cfg, multiphase=3, seed=seed).solve()
        assert outcome.goal_fitness >= 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            random_pipeline(make_rng(0), n_stages=0)
