"""Property tests on simulator invariants over random pipelines."""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_rng
from repro.grid import GridSimulator, plan_to_activity_graph
from repro.grid.generators import random_pipeline
from repro.planning.search import goal_gap, greedy_best_first


def _executed(seed, n_stages=3):
    rng = make_rng(seed)
    onto, domain = random_pipeline(rng, n_stages=n_stages)
    r = greedy_best_first(domain, goal_gap(domain, scale=1000.0), max_expansions=100_000)
    assert r.solved
    graph = plan_to_activity_graph(domain, r.plan)
    sim = GridSimulator(onto)
    return graph, sim, sim.execute(graph, domain.initial_state)


class TestSimulatorInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_no_server_overlap(self, seed):
        """A machine's CPU (and NIC) runs at most one task at a time."""
        graph, sim, result = _executed(seed)
        by_server = defaultdict(list)
        for rec in result.trace:
            if rec.status != "done":
                continue
            activity = graph.activity(rec.activity_id)
            by_server[sim._server_of(activity)].append((rec.start, rec.end))
        for intervals in by_server.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_dependencies_respected_in_time(self, seed):
        """No activity starts before every predecessor has finished."""
        graph, _sim, result = _executed(seed)
        times = {r.activity_id: (r.start, r.end) for r in result.trace if r.status == "done"}
        for act in graph.activities():
            for pred in graph.predecessors(act.id):
                assert times[act.id][0] >= times[pred][1] - 1e-9

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_makespan_is_last_completion(self, seed):
        _graph, _sim, result = _executed(seed)
        ends = [r.end for r in result.trace if r.status == "done"]
        assert result.makespan == max(ends)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_durations_match_model(self, seed):
        """Every record's duration equals the simulator's duration model."""
        graph, sim, result = _executed(seed)
        for rec in result.trace:
            if rec.status != "done":
                continue
            expected = sim._duration(graph.activity(rec.activity_id))
            assert rec.end - rec.start == pytest.approx(expected)

