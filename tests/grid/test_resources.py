"""Tests for machines, sites, links, topology."""

import pytest

from repro.grid import GridTopology, Link, Machine, Site


def _topo():
    t = GridTopology(local_bandwidth_mbps=10_000)
    t.add_site(Site("s1")).add_site(Site("s2")).add_site(Site("s3"))
    t.add_machine(Machine("m1", site="s1", speed=1000))
    t.add_machine(Machine("m2", site="s1", speed=2000))
    t.add_machine(Machine("m3", site="s2", speed=4000))
    t.add_machine(Machine("m4", site="s3", speed=500))
    t.add_link(Link("s1", "s2", bandwidth_mbps=100, latency_s=0.1))
    t.add_link(Link("s2", "s3", bandwidth_mbps=1000, latency_s=0.2))
    return t


class TestMachine:
    def test_validation(self):
        with pytest.raises(ValueError):
            Machine("m", site="s", speed=0)
        with pytest.raises(ValueError):
            Machine("m", site="s", speed=1, memory_gb=0)
        with pytest.raises(ValueError):
            Machine("m", site="s", speed=1, load=-1)

    def test_effective_speed_under_load(self):
        m = Machine("m", site="s", speed=1000, load=1.0)
        assert m.effective_speed == 500.0

    def test_state_transitions(self):
        m = Machine("m", site="s", speed=1000)
        assert m.failed().up is False
        assert m.failed().restored().up is True
        assert m.with_load(2.0).load == 2.0


class TestLink:
    def test_validation(self):
        with pytest.raises(ValueError):
            Link("a", "b", bandwidth_mbps=0)
        with pytest.raises(ValueError):
            Link("a", "b", bandwidth_mbps=1, latency_s=-1)


class TestTopology:
    def test_duplicate_site_rejected(self):
        t = GridTopology()
        t.add_site(Site("s"))
        with pytest.raises(ValueError, match="duplicate"):
            t.add_site(Site("s"))

    def test_machine_needs_known_site(self):
        t = GridTopology()
        with pytest.raises(ValueError, match="unknown site"):
            t.add_machine(Machine("m", site="nope", speed=1))

    def test_link_needs_known_sites(self):
        t = GridTopology()
        t.add_site(Site("a"))
        with pytest.raises(ValueError, match="unknown site"):
            t.add_link(Link("a", "b", bandwidth_mbps=1))

    def test_machine_names_sorted(self):
        t = _topo()
        assert t.machine_names() == ["m1", "m2", "m3", "m4"]

    def test_same_site_bandwidth_is_local(self):
        t = _topo()
        assert t.bandwidth("m1", "m2") == 10_000

    def test_path_bandwidth_is_bottleneck(self):
        t = _topo()
        assert t.bandwidth("m1", "m4") == 100  # s1-s2 link limits

    def test_latency_sums_along_path(self):
        t = _topo()
        assert t.latency("m1", "m4") == pytest.approx(0.3)

    def test_no_path_returns_none(self):
        t = _topo()
        t.add_site(Site("island"))
        t.add_machine(Machine("m5", site="island", speed=1))
        assert t.bandwidth("m1", "m5") is None
        assert t.transfer_time("m1", "m5", 10) is None

    def test_transfer_time(self):
        t = _topo()
        # 100 MB over 100 Mbit/s = 8 s, plus 0.1 s latency.
        assert t.transfer_time("m1", "m3", 100) == pytest.approx(8.1)

    def test_same_machine_transfer_free(self):
        t = _topo()
        assert t.transfer_time("m1", "m1", 1e9) == 0.0

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            _topo().transfer_time("m1", "m2", -5)

    def test_fail_and_restore(self):
        t = _topo()
        t.fail_machine("m1")
        assert not t.machines["m1"].up
        assert "m1" not in [m.name for m in t.up_machines()]
        t.restore_machine("m1")
        assert t.machines["m1"].up

    def test_set_load(self):
        t = _topo()
        t.set_load("m2", 3.0)
        assert t.machines["m2"].effective_speed == 500.0

    def test_set_unknown_machine_rejected(self):
        with pytest.raises(ValueError, match="unknown machine"):
            _topo().set_load("zzz", 1.0)
