"""Tiny deterministic experiment specs for the repro.exp test suite.

Trial functions live at module level so the process-pool runner can
pickle them, exactly like the real specs in :mod:`repro.exp.paper`.
"""

from __future__ import annotations

from repro.analysis.stats_util import mean_ci
from repro.analysis.tables import Table
from repro.exp import Comparison, ExperimentSpec

TOY_AXES = {"x": [1, 2], "mode": ["a", "b"]}


def toy_trial(cell, seed, scale):
    """Deterministic pseudo-measurement: a pure function of cell and seed."""
    return {
        "value": float(cell["x"] * 100 + seed % 97),
        "solved": True,
        "mode": cell["mode"],
    }


def failing_trial(cell, seed, scale):
    """Fail every trial of one grid cell, succeed elsewhere."""
    if cell["x"] == 2:
        raise RuntimeError(f"boom in cell x={cell['x']}")
    return toy_trial(cell, seed, scale)


_FLAKY_CALLS: dict = {}


def flaky_trial(cell, seed, scale):
    """Fail the first attempt of every trial, succeed on retry (serial path)."""
    n = _FLAKY_CALLS.get(seed, 0)
    _FLAKY_CALLS[seed] = n + 1
    if n == 0:
        raise RuntimeError("transient failure")
    return toy_trial(cell, seed, scale)


def reset_flaky():
    """Clear the flaky-trial attempt counter between tests."""
    _FLAKY_CALLS.clear()


def toy_aggregate(spec, records, scale):
    """Mean ``value`` per grid cell, in deterministic cell order."""
    by_cell = {}
    for rec in records:
        if rec.ok:
            by_cell.setdefault(tuple(sorted(rec.cell.items())), []).append(rec)
    table = Table(title="Toy", columns=["x", "mode", "mean_value", "n"])
    for key in sorted(by_cell):
        cell = dict(key)
        values = [r.metrics["value"] for r in by_cell[key]]
        table.add_row(cell["x"], cell["mode"], mean_ci(values).mean, len(values))
    return table


def make_toy_spec(name="toy-exp", trials=2, trial_fn=toy_trial, **overrides):
    """A 4-cell toy experiment (2x2 grid) with *trials* repeats per cell."""
    kwargs = dict(
        name=name,
        title="Toy experiment",
        description="A deterministic toy sweep used by the test suite.",
        axes=dict(TOY_AXES),
        trial_fn=trial_fn,
        trials=trials,
        aggregate_fn=toy_aggregate,
        base_seed=99,
        ci_metrics=("value",),
        comparisons=(Comparison(metric="value", axis="x", a=1, b=2, groupby=("mode",)),),
    )
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)
