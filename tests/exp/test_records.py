"""Durable trial records: JSONL round-trip, torn lines, manifests."""

import json

from repro.exp import (
    TrialRecord,
    append_record,
    git_revision,
    load_records,
    read_manifest,
    write_manifest,
)
from repro.exp.records import MANIFEST_NAME, RECORDS_NAME


def _record(i=0, status="ok"):
    return TrialRecord(
        experiment="toy",
        trial_id=f"x={i}#t0",
        cell={"x": i},
        trial_index=0,
        seed=1000 + i,
        config_hash="abc123def456",
        status=status,
        metrics={"value": float(i)} if status == "ok" else {},
        elapsed_seconds=0.5,
        git_rev="deadbee",
        started_at="2026-01-01T00:00:00+00:00",
        error=None if status == "ok" else "RuntimeError('boom')",
    )


class TestTrialRecord:
    def test_dict_round_trip(self):
        rec = _record()
        assert TrialRecord.from_dict(rec.to_dict()) == rec

    def test_unknown_keys_dropped(self):
        payload = _record().to_dict()
        payload["future_field"] = "ignored"
        assert TrialRecord.from_dict(payload) == _record()

    def test_ok_property(self):
        assert _record(status="ok").ok
        assert not _record(status="failed").ok


class TestRecordsFile:
    def test_append_and_load(self, tmp_path):
        path = tmp_path / RECORDS_NAME
        for i in range(3):
            append_record(path, _record(i))
        records, skipped = load_records(path)
        assert skipped == 0
        assert [r.trial_id for r in records] == ["x=0#t0", "x=1#t0", "x=2#t0"]

    def test_missing_file(self, tmp_path):
        assert load_records(tmp_path / "absent.jsonl") == ([], 0)

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = tmp_path / RECORDS_NAME
        append_record(path, _record(0))
        append_record(path, _record(1))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"experiment": "toy", "trial_id": "x=2#')  # torn mid-write
        records, skipped = load_records(path)
        assert len(records) == 2
        assert skipped == 1

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / RECORDS_NAME
        append_record(path, _record(0))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n\n")
        records, skipped = load_records(path)
        assert len(records) == 1
        assert skipped == 0

    def test_lines_are_compact_sorted_json(self, tmp_path):
        path = tmp_path / RECORDS_NAME
        append_record(path, _record(0))
        line = path.read_text(encoding="utf-8").splitlines()[0]
        payload = json.loads(line)
        assert list(payload) == sorted(payload)
        assert payload["config_hash"] == "abc123def456"
        assert payload["seed"] == 1000


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = {"experiment": "toy", "sweep_hash": "ff00", "total_trials": 8}
        write_manifest(tmp_path, manifest)
        assert read_manifest(tmp_path) == manifest

    def test_missing_manifest(self, tmp_path):
        assert read_manifest(tmp_path) is None

    def test_atomic_no_temp_left_behind(self, tmp_path):
        write_manifest(tmp_path, {"a": 1})
        write_manifest(tmp_path, {"a": 2})  # overwrite via os.replace
        assert [p.name for p in tmp_path.iterdir()] == [MANIFEST_NAME]
        assert read_manifest(tmp_path) == {"a": 2}


class TestGitRevision:
    def test_in_repo(self):
        rev = git_revision()
        assert rev == "unknown" or len(rev.replace("+dirty", "")) >= 7

    def test_outside_repo_degrades(self, tmp_path):
        assert git_revision(cwd=tmp_path) == "unknown"
