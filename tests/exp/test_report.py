"""Report layer: byte-stable Markdown, marker-section regeneration."""

import math

import pytest

from repro.analysis.experiments import ExperimentScale
from repro.analysis.tables import Table
from repro.exp import (
    SweepRunner,
    TrialRecord,
    experiment_report,
    load_records,
    markdown_table,
    read_manifest,
    render_sections,
    run_inline,
    update_experiments_md,
)
from repro.exp.records import RECORDS_NAME
from repro.exp.report import MarkerError
from tests.exp.toyexp import make_toy_spec

SCALE = ExperimentScale.scaled()


def _toy_records(spec, metrics_fn=None):
    out = []
    for t in spec.trial_specs(SCALE):
        metrics = (
            metrics_fn(t) if metrics_fn else {"value": float(t.seed % 97)}
        )
        out.append(
            TrialRecord(
                experiment=spec.name,
                trial_id=t.trial_id,
                cell=t.cell_dict,
                trial_index=t.trial_index,
                seed=t.seed,
                config_hash=t.config_hash,
                status="ok",
                metrics=metrics,
                elapsed_seconds=0.01,
                git_rev="deadbee",
                started_at="2026-01-01T00:00:00+00:00",
            )
        )
    return out


class TestMarkdownTable:
    def test_pipe_layout(self):
        table = Table(title="T", columns=["a", "b"]).add_row(1, 2.5).add_row(3, 4)
        text = markdown_table(table)
        assert text.splitlines() == [
            "| a | b |",
            "|---|---|",
            "| 1 | 2.5 |",
            "| 3 | 4 |",
        ]

    def test_nan_cell_rendered(self):
        table = Table(title="T", columns=["a"]).add_row(float("nan"))
        assert "| nan |" in markdown_table(table)


class TestExperimentReport:
    def test_byte_stable(self):
        spec = make_toy_spec()
        records = _toy_records(spec)
        first = experiment_report(spec, records, SCALE)
        second = experiment_report(spec, list(records), SCALE)
        assert first == second

    def test_no_timestamps_or_machine_state(self):
        spec = make_toy_spec()
        report = experiment_report(spec, _toy_records(spec), SCALE)
        assert "2026-01-01" not in report  # started_at never leaks
        assert "elapsed" not in report

    def test_contains_provenance_and_sections(self):
        spec = make_toy_spec()
        report = experiment_report(spec, _toy_records(spec), SCALE)
        assert "### Toy experiment" in report
        assert "8 recorded trials" in report
        assert "base seed 99" in report
        assert "`scaled`" in report
        assert "`deadbee`" in report
        assert "Per-cell mean ± 95% CI" in report
        assert "Wilcoxon rank-sum comparisons" in report

    def test_no_ok_records_raises(self):
        spec = make_toy_spec()
        bad = [
            TrialRecord(
                experiment=spec.name,
                trial_id="x=1,mode=a#t0",
                cell={"x": 1, "mode": "a"},
                trial_index=0,
                seed=1,
                config_hash="0" * 12,
                status="failed",
                error="boom",
            )
        ]
        with pytest.raises(ValueError, match="no successful"):
            experiment_report(spec, bad, SCALE)
        with pytest.raises(ValueError, match="no successful"):
            experiment_report(spec, [], SCALE)

    def test_failed_records_noted_but_excluded(self):
        spec = make_toy_spec()
        records = _toy_records(spec)
        records[0] = TrialRecord(
            experiment=spec.name,
            trial_id="x=9,mode=z#t0",
            cell={"x": 9, "mode": "z"},
            trial_index=0,
            seed=9,
            config_hash="f" * 12,
            status="failed",
            error="boom",
        )
        report = experiment_report(spec, records, SCALE)
        assert "1 failed trial record(s) excluded" in report

    def test_nan_and_none_metrics_degrade_to_empty_ci_row(self):
        spec = make_toy_spec(ci_metrics=("value", "missing"))
        records = _toy_records(
            spec, metrics_fn=lambda t: {"value": float("nan"), "missing": None}
        )
        report = experiment_report(spec, records, SCALE)
        assert "| value | - | - | 0 |" in report
        assert "| missing | - | - | 0 |" in report

    def test_single_trial_ci_degenerates_to_point(self):
        spec = make_toy_spec(trials=1, comparisons=())
        records = [r for r in _toy_records(spec) if r.trial_index == 0]
        report = experiment_report(spec, records, SCALE)
        for line in report.splitlines():
            if "| value |" in line:
                cells = [c.strip() for c in line.split("|")]
                mean, ci, n = cells[3], cells[4], cells[5]
                assert n == "1"
                assert ci == f"[{mean}, {mean}]"

    def test_comparison_with_missing_side_degrades(self):
        spec = make_toy_spec(trials=1)
        records = [r for r in _toy_records(spec) if r.cell["x"] == 1]
        report = experiment_report(spec, records, SCALE)
        assert "| - | - |" in report  # U/p dashes when one sample is empty

    def test_inf_metric_excluded_from_ci(self):
        spec = make_toy_spec(trials=2, comparisons=(), ci_metrics=("score",))
        records = _toy_records(
            spec,
            metrics_fn=lambda t: {
                "value": 1.0,
                "score": math.inf if t.trial_index == 0 else 1.0,
            },
        )
        report = experiment_report(spec, records, SCALE)
        assert "inf" not in report
        assert "| score | 1.000 | [1.000, 1.000] | 1 |" in report


class TestMarkerUpdate:
    DOC = (
        "# Results\n\nprose before\n\n"
        "<!-- exp:toy-exp:begin -->\nstale\n<!-- exp:toy-exp:end -->\n\n"
        "prose after\n"
    )

    def _reports(self):
        spec = make_toy_spec()
        return {spec.name: experiment_report(spec, _toy_records(spec), SCALE)}

    def test_update_then_stable(self, tmp_path):
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text(self.DOC, encoding="utf-8")
        reports = self._reports()

        assert update_experiments_md(doc, reports) == ["toy-exp"]
        first = doc.read_bytes()
        assert b"stale" not in first
        assert b"prose before" in first and b"prose after" in first
        assert b"do not edit" in first

        # Regenerating from the same records changes nothing, byte-for-byte.
        assert update_experiments_md(doc, reports) == []
        assert doc.read_bytes() == first

    def test_check_mode_never_writes(self, tmp_path):
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text(self.DOC, encoding="utf-8")
        assert update_experiments_md(doc, self._reports(), check=True) == ["toy-exp"]
        assert doc.read_text(encoding="utf-8") == self.DOC

    def test_missing_markers_raise(self, tmp_path):
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text("# Results\n\nno markers here\n", encoding="utf-8")
        with pytest.raises(MarkerError, match="toy-exp"):
            update_experiments_md(doc, self._reports())

    def test_render_sections_wraps_with_markers(self):
        sections = render_sections({"abc": "body\n"})
        assert sections["abc"].startswith("<!-- exp:abc:begin -->\n")
        assert sections["abc"].endswith("<!-- exp:abc:end -->")


class TestRoundTrip:
    """Spec -> runner -> records on disk -> report, with a kill in the middle."""

    def test_sweep_records_report_round_trip(self, tmp_path):
        spec = make_toy_spec()
        out = tmp_path / "sweep"
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text(
            "# Results\n\n<!-- exp:toy-exp:begin -->\n<!-- exp:toy-exp:end -->\n",
            encoding="utf-8",
        )

        # Kill the sweep partway, then resume to completion.
        SweepRunner(spec, out, scale=SCALE).run(limit=5)
        resumed = SweepRunner(spec, out, scale=SCALE).run(resume=True)
        assert resumed.complete and resumed.skipped == 5

        records, torn = load_records(out / RECORDS_NAME)
        assert torn == 0 and len(records) == 8
        manifest = read_manifest(out)
        report = experiment_report(spec, records, SCALE, manifest=manifest)

        # Disk records aggregate identically to a fresh in-memory run.
        fresh = run_inline(spec, scale=SCALE)
        assert report == experiment_report(spec, fresh.records, SCALE, manifest=manifest)

        # Marker update converges after one write.
        assert update_experiments_md(doc, {spec.name: report}) == [spec.name]
        assert update_experiments_md(doc, {spec.name: report}) == []
