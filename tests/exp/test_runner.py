"""SweepRunner: execution, durability, kill/resume, retries, observability."""

import json

import pytest

from repro.analysis.experiments import ExperimentScale
from repro.core.resilient import ResiliencePolicy
from repro.exp import SweepRunner, load_records, read_manifest, run_inline, sweep_status
from repro.exp.records import RECORDS_NAME
from repro.exp.runner import SweepError
from repro.obs import MetricsRegistry, Tracer
from repro.obs.tracer import Sink
from tests.exp.toyexp import (
    failing_trial,
    flaky_trial,
    make_toy_spec,
    reset_flaky,
)

SCALE = ExperimentScale.scaled()
FAST_RETRY = ResiliencePolicy(retry_max=1, backoff_base_s=0.0, backoff_cap_s=0.0)


class _Collect(Sink):
    def __init__(self):
        self.events = []

    def write(self, event):
        self.events.append(event)


class TestSerialRun:
    def test_full_run_writes_provenance_records(self, tmp_path):
        spec = make_toy_spec()
        result = SweepRunner(spec, tmp_path, scale=SCALE).run()
        assert result.complete
        assert result.total == 8
        assert len(result.new_records) == 8
        lines = (tmp_path / RECORDS_NAME).read_text().splitlines()
        assert len(lines) == 8
        for line in lines:
            payload = json.loads(line)
            assert payload["status"] == "ok"
            assert len(payload["config_hash"]) == 12
            assert payload["seed"] > 0
            assert payload["git_rev"]
            assert payload["started_at"]

    def test_records_sorted_for_aggregation(self, tmp_path):
        result = SweepRunner(make_toy_spec(), tmp_path, scale=SCALE).run()
        ids = [r.trial_id for r in result.records]
        assert ids == sorted(ids)

    def test_table_aggregation(self):
        result = run_inline(make_toy_spec(), scale=SCALE)
        table = result.table()
        assert table.columns == ["x", "mode", "mean_value", "n"]
        assert len(table.rows) == 4
        assert all(row[3] == 2 for row in table.rows)

    def test_in_memory_run_touches_no_disk(self, tmp_path):
        run_inline(make_toy_spec(), scale=SCALE)
        assert list(tmp_path.iterdir()) == []

    def test_manifest_written(self, tmp_path):
        spec = make_toy_spec()
        SweepRunner(spec, tmp_path, scale=SCALE).run()
        manifest = read_manifest(tmp_path)
        assert manifest["experiment"] == spec.name
        assert manifest["total_trials"] == 8
        assert manifest["sweep_hash"] == spec.sweep_hash(SCALE)


class TestResume:
    def test_rerun_without_resume_refuses(self, tmp_path):
        spec = make_toy_spec()
        SweepRunner(spec, tmp_path, scale=SCALE).run()
        with pytest.raises(SweepError, match="resume"):
            SweepRunner(spec, tmp_path, scale=SCALE).run()

    def test_resume_skips_everything_when_complete(self, tmp_path):
        spec = make_toy_spec()
        SweepRunner(spec, tmp_path, scale=SCALE).run()
        result = SweepRunner(spec, tmp_path, scale=SCALE).run(resume=True)
        assert result.complete
        assert result.skipped == 8
        assert result.new_records == []

    def test_killed_sweep_resumes_without_rerunning(self, tmp_path):
        spec = make_toy_spec()
        partial = SweepRunner(spec, tmp_path, scale=SCALE).run(limit=3)
        assert not partial.complete
        assert len(partial.new_records) == 3

        status = sweep_status(spec, tmp_path)
        assert status.done == 3 and status.pending == 5 and not status.complete

        resumed = SweepRunner(spec, tmp_path, scale=SCALE).run(resume=True)
        assert resumed.complete
        assert resumed.skipped == 3
        assert len(resumed.new_records) == 5

        # No trial ran twice, and seeds match the original enumeration.
        records, torn = load_records(tmp_path / RECORDS_NAME)
        assert torn == 0
        ids = [r.trial_id for r in records]
        assert len(ids) == len(set(ids)) == 8
        expected = {t.trial_id: t.seed for t in spec.trial_specs(SCALE)}
        assert {r.trial_id: r.seed for r in records} == expected

        done = sweep_status(spec, tmp_path)
        assert done.complete and done.pending == 0

    def test_resume_tolerates_torn_trailing_line(self, tmp_path):
        spec = make_toy_spec()
        SweepRunner(spec, tmp_path, scale=SCALE).run(limit=2)
        with open(tmp_path / RECORDS_NAME, "a", encoding="utf-8") as fh:
            fh.write('{"trial_id": "x=')  # crash mid-append
        resumed = SweepRunner(spec, tmp_path, scale=SCALE).run(resume=True)
        assert resumed.complete
        assert resumed.skipped == 2

    def test_force_starts_over(self, tmp_path):
        spec = make_toy_spec()
        SweepRunner(spec, tmp_path, scale=SCALE).run(limit=3)
        result = SweepRunner(spec, tmp_path, scale=SCALE).run(force=True)
        assert result.complete
        assert result.skipped == 0
        assert len(result.new_records) == 8

    def test_resume_with_different_config_refuses(self, tmp_path):
        spec = make_toy_spec()
        SweepRunner(spec, tmp_path, scale=SCALE, trials=2).run(limit=2)
        with pytest.raises(SweepError, match="different"):
            SweepRunner(spec, tmp_path, scale=SCALE, trials=3).run(resume=True)

    def test_stale_records_not_counted_done(self, tmp_path):
        spec = make_toy_spec()
        SweepRunner(spec, tmp_path, scale=SCALE).run()
        other_scale = ExperimentScale.paper()
        status = sweep_status(spec, tmp_path, scale=other_scale)
        # The manifest pins the recorded scale, so status still reports done.
        assert status.complete


class TestFailuresAndRetry:
    def test_failed_trials_recorded(self, tmp_path):
        spec = make_toy_spec(trial_fn=failing_trial, trials=1)
        result = SweepRunner(spec, tmp_path, scale=SCALE, policy=FAST_RETRY).run()
        assert not result.complete
        assert len(result.failed) == 2  # the two x=2 cells, one trial each
        records, _ = load_records(tmp_path / RECORDS_NAME)
        failed = [r for r in records if not r.ok]
        assert failed and all("boom" in r.error for r in failed)
        assert all(r.attempt == FAST_RETRY.retry_max + 1 for r in failed)

    def test_transient_failure_retried(self):
        reset_flaky()
        spec = make_toy_spec(trial_fn=flaky_trial, trials=1)
        result = SweepRunner(spec, None, scale=SCALE, policy=FAST_RETRY).run()
        assert result.complete
        assert all(r.attempt == 2 for r in result.new_records)

    def test_failed_then_resume_reruns_failures(self, tmp_path):
        reset_flaky()
        spec = make_toy_spec(trial_fn=flaky_trial, trials=1)
        no_retry = ResiliencePolicy(retry_max=0, backoff_base_s=0.0, backoff_cap_s=0.0)
        first = SweepRunner(spec, tmp_path, scale=SCALE, policy=no_retry).run()
        assert len(first.failed) == 4 and not first.complete
        resumed = SweepRunner(spec, tmp_path, scale=SCALE, policy=no_retry).run(resume=True)
        assert resumed.complete


class TestPool:
    def test_pool_run_matches_enumeration(self, tmp_path):
        spec = make_toy_spec()
        result = SweepRunner(spec, tmp_path, scale=SCALE, workers=2).run()
        assert result.complete
        ids = [r.trial_id for r in result.records]
        assert ids == sorted(t.trial_id for t in spec.trial_specs(SCALE))

    def test_pool_and_serial_records_agree(self):
        spec = make_toy_spec()
        serial = run_inline(spec, scale=SCALE)
        pool = SweepRunner(spec, None, scale=SCALE, workers=2).run()
        strip = lambda recs: [  # noqa: E731
            (r.trial_id, r.seed, r.config_hash, tuple(sorted(r.metrics.items())))
            for r in recs
        ]
        assert strip(serial.records) == strip(pool.records)


class TestObservability:
    def test_events_and_metrics(self):
        sink = _Collect()
        metrics = MetricsRegistry()
        spec = make_toy_spec(trials=1)
        SweepRunner(
            spec, None, scale=SCALE, tracer=Tracer([sink]), metrics=metrics
        ).run()
        kinds = {e.kind for e in sink.events}
        assert {"trial-started", "trial-finished", "sweep-progress"} <= kinds
        finished = [e for e in sink.events if e.kind == "trial-finished"]
        assert len(finished) == 4
        assert all(e.status == "ok" for e in finished)
        assert metrics.counters["trials_completed"].value == 4
        assert metrics.timers["trial"].count == 4

    def test_skip_counter_on_resume(self, tmp_path):
        spec = make_toy_spec(trials=1)
        SweepRunner(spec, tmp_path, scale=SCALE).run()
        metrics = MetricsRegistry()
        SweepRunner(spec, tmp_path, scale=SCALE, metrics=metrics).run(resume=True)
        assert metrics.counters["trials_skipped"].value == 4
