"""Spec enumeration, hashing and seed derivation."""

import pytest

from repro.analysis.experiments import ExperimentScale
from repro.exp import (
    ExperimentSpec,
    config_hash,
    derive_seed,
    get_spec,
    list_specs,
    register,
    spec_names,
)
from tests.exp.toyexp import make_toy_spec, toy_aggregate, toy_trial

SCALE = ExperimentScale.scaled()


class TestConfigHash:
    def test_stable_and_short(self):
        h = config_hash({"a": 1, "b": [2, 3]})
        assert h == config_hash({"a": 1, "b": [2, 3]})
        assert len(h) == 12
        int(h, 16)  # hex

    def test_key_order_irrelevant(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(2003, "x=1#t0") == derive_seed(2003, "x=1#t0")

    def test_distinct_per_trial_and_base(self):
        seeds = {
            derive_seed(base, tid)
            for base in (1, 2)
            for tid in ("x=1#t0", "x=1#t1", "x=2#t0")
        }
        assert len(seeds) == 6

    def test_fits_in_63_bits(self):
        for tid in ("a", "b", "c"):
            s = derive_seed(0, tid)
            assert 0 <= s < 2**63


class TestEnumeration:
    def test_cells_cross_product_order(self):
        spec = make_toy_spec()
        assert spec.cells(SCALE) == [
            {"x": 1, "mode": "a"},
            {"x": 1, "mode": "b"},
            {"x": 2, "mode": "a"},
            {"x": 2, "mode": "b"},
        ]

    def test_trial_specs_deterministic(self):
        spec = make_toy_spec(trials=3)
        first = spec.trial_specs(SCALE)
        second = spec.trial_specs(SCALE)
        assert first == second
        assert len(first) == 4 * 3

    def test_trial_id_format_and_uniqueness(self):
        spec = make_toy_spec(trials=2)
        ids = [t.trial_id for t in spec.trial_specs(SCALE)]
        assert len(set(ids)) == len(ids)
        assert "x=1,mode=a#t0" in ids

    def test_trials_override(self):
        spec = make_toy_spec(trials=5)
        assert len(spec.trial_specs(SCALE, trials=1)) == 4

    def test_scale_dependent_axes_and_trials(self):
        spec = make_toy_spec(
            axes=lambda s: {"disks": list(s.hanoi_disks)},
            trials=lambda s: s.runs_hanoi,
        )
        specs = spec.trial_specs(SCALE)
        assert len(specs) == len(SCALE.hanoi_disks) * SCALE.runs_hanoi

    def test_config_hash_covers_scale(self):
        spec = make_toy_spec()
        a = spec.trial_specs(ExperimentScale.scaled())[0]
        b = spec.trial_specs(ExperimentScale.paper())[0]
        assert a.trial_id == b.trial_id
        assert a.config_hash != b.config_hash

    def test_sweep_hash_sensitive_to_trials(self):
        spec = make_toy_spec()
        assert spec.sweep_hash(SCALE, trials=1) != spec.sweep_hash(SCALE, trials=2)

    def test_empty_axis_rejected(self):
        spec = make_toy_spec(axes={"x": []})
        with pytest.raises(ValueError, match="empty axis"):
            spec.trial_specs(SCALE)

    def test_nonpositive_trials_rejected(self):
        spec = make_toy_spec(trials=0)
        with pytest.raises(ValueError):
            spec.trial_specs(SCALE)

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="slug"):
            make_toy_spec(name="has space")

    def test_doc_section_defaults_to_name(self):
        assert make_toy_spec(name="abc").doc_section == "abc"


class TestRegistry:
    def test_paper_specs_registered(self):
        for name in ("table2-hanoi", "table4-tile", "table5-phases"):
            assert name in spec_names()
            assert get_spec(name).name == name

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="table2-hanoi"):
            get_spec("no-such-experiment")

    def test_duplicate_registration_rejected(self):
        spec = ExperimentSpec(
            name="test-dup",
            title="t",
            description="d",
            axes={"x": [1]},
            trial_fn=toy_trial,
            trials=1,
            aggregate_fn=toy_aggregate,
        )
        register(spec)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register(spec)
            register(spec, replace=True)  # explicit replace is allowed
        finally:
            import repro.exp.registry as reg

            reg._REGISTRY.pop("test-dup", None)

    def test_list_specs_sorted(self):
        names = [s.name for s in list_specs()]
        assert names == sorted(names)
