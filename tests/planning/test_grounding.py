"""Tests for operator schemas and grounding."""

import pytest

from repro.planning import OperatorSchema, atom, ground_all, ground_schema, is_variable


def _move_schema(**kw):
    base = dict(
        name="move",
        parameters=(("?x", "thing"), ("?to", "place")),
        preconditions=(atom("at", "?x", "home"),),
        add=(atom("at", "?x", "?to"),),
        delete=(atom("at", "?x", "home"),),
    )
    base.update(kw)
    return OperatorSchema(**base)


class TestIsVariable:
    def test_variables(self):
        assert is_variable("?x")
        assert not is_variable("x")
        assert not is_variable(3)


class TestSchemaValidation:
    def test_parameter_must_be_variable(self):
        with pytest.raises(ValueError, match="'\\?'"):
            OperatorSchema(name="bad", parameters=(("x", "t"),))

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            OperatorSchema(name="bad", parameters=(("?x", "t"), ("?x", "u")))


class TestGrounding:
    def test_cartesian_product(self):
        schema = _move_schema()
        ops = ground_schema(schema, {"thing": ["a", "b"], "place": ["p", "q"]})
        assert len(ops) == 4
        names = {op.name for op in ops}
        assert "move(a, p)" in names and "move(b, q)" in names

    def test_substitution_correct(self):
        schema = _move_schema()
        ops = ground_schema(schema, {"thing": ["a"], "place": ["p"]})
        op = ops[0]
        assert op.preconditions == frozenset({atom("at", "a", "home")})
        assert op.add == frozenset({atom("at", "a", "p")})
        assert op.delete == frozenset({atom("at", "a", "home")})

    def test_constraint_filters_bindings(self):
        schema = _move_schema(constraint=lambda b: b["?x"] != b["?to"])
        ops = ground_schema(schema, {"thing": ["a"], "place": ["a", "p"]})
        assert [op.name for op in ops] == ["move(a, p)"]

    def test_callable_cost(self):
        schema = _move_schema(cost=lambda b: 5.0 if b["?to"] == "p" else 1.0)
        ops = ground_schema(schema, {"thing": ["a"], "place": ["p", "q"]})
        costs = {op.name: op.cost for op in ops}
        assert costs["move(a, p)"] == 5.0
        assert costs["move(a, q)"] == 1.0

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="no objects of type"):
            ground_schema(_move_schema(), {"thing": ["a"]})

    def test_unbound_variable_in_template_rejected(self):
        schema = OperatorSchema(
            name="bad",
            parameters=(("?x", "t"),),
            add=(atom("at", "?y"),),  # ?y never bound
        )
        with pytest.raises(ValueError, match="unbound"):
            ground_schema(schema, {"t": ["a"]})

    def test_ground_all_preserves_schema_order(self):
        s1 = _move_schema(name="first")
        s2 = _move_schema(name="second")
        ops = ground_all([s1, s2], {"thing": ["a"], "place": ["p"]})
        assert [op.name for op in ops] == ["first(a, p)", "second(a, p)"]

    def test_grounding_is_deterministic(self):
        objs = {"thing": ["a", "b"], "place": ["p", "q"]}
        a = [op.name for op in ground_schema(_move_schema(), objs)]
        b = [op.name for op in ground_schema(_move_schema(), objs)]
        assert a == b
