"""Tests for STRIPS operations."""

import pytest

from repro.planning import Operation, atom
from repro.planning.operation import check_operations


def _op(**kw):
    base = dict(
        name="op",
        preconditions={atom("p")},
        add={atom("q")},
        delete={atom("p")},
    )
    base.update(kw)
    return Operation(**base)


class TestOperation:
    def test_applicable(self):
        op = _op()
        assert op.applicable(frozenset({atom("p")}))
        assert not op.applicable(frozenset())

    def test_apply(self):
        op = _op()
        out = op.apply(frozenset({atom("p"), atom("r")}))
        assert out == frozenset({atom("q"), atom("r")})

    def test_apply_invalid_raises(self):
        with pytest.raises(ValueError, match="missing preconditions"):
            _op().apply(frozenset())

    def test_apply_unchecked_skips_validation(self):
        out = _op().apply_unchecked(frozenset())
        assert atom("q") in out

    def test_postconditions_view(self):
        assert _op().postconditions == frozenset({atom("q")})

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            _op(cost=-1.0)

    def test_add_delete_overlap_rejected(self):
        with pytest.raises(ValueError, match="adds and deletes"):
            Operation(name="bad", add={atom("x")}, delete={atom("x")})

    def test_sets_are_frozen(self):
        op = _op()
        assert isinstance(op.preconditions, frozenset)
        assert isinstance(op.add, frozenset)
        assert isinstance(op.delete, frozenset)

    def test_default_cost_is_unit(self):
        assert _op().cost == 1.0


class TestCheckOperations:
    def test_passes_on_closed_universe(self):
        universe = frozenset({atom("p"), atom("q")})
        check_operations([_op()], universe)

    def test_detects_stray_atoms(self):
        with pytest.raises(ValueError, match="unknown"):
            check_operations([_op()], frozenset({atom("p")}))
