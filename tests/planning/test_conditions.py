"""Tests for atoms and states."""

import pytest

from repro.planning import atom, format_atom, format_state, make_state, satisfies


class TestAtom:
    def test_construction(self):
        assert atom("on", "a", "b") == ("on", "a", "b")

    def test_nullary(self):
        assert atom("handempty") == ("handempty",)

    def test_mixed_arg_types(self):
        assert atom("on", 1, "A") == ("on", 1, "A")

    def test_bad_predicate(self):
        with pytest.raises(ValueError):
            atom("")
        with pytest.raises(ValueError):
            atom(123)  # type: ignore[arg-type]


class TestState:
    def test_make_state(self):
        s = make_state([atom("a"), atom("b")])
        assert atom("a") in s and atom("b") in s

    def test_duplicates_collapse(self):
        s = make_state([atom("a"), atom("a")])
        assert len(s) == 1

    def test_non_tuple_rejected(self):
        with pytest.raises(ValueError):
            make_state(["a"])  # type: ignore[list-item]

    def test_satisfies(self):
        s = make_state([atom("a"), atom("b"), atom("c")])
        assert satisfies(s, [atom("a"), atom("b")])
        assert not satisfies(s, [atom("a"), atom("d")])
        assert satisfies(s, [])


class TestFormatting:
    def test_format_atom(self):
        assert format_atom(atom("on", "a", "b")) == "on(a, b)"
        assert format_atom(atom("handempty")) == "handempty"

    def test_format_state_sorted(self):
        s = make_state([atom("b"), atom("a")])
        assert format_state(s) == "{a, b}"
