"""Tests for the resumable (sliceable) best-first search used by portfolios."""

import pytest

from repro.domains import HanoiDomain
from repro.planning.search import (
    SEARCH_ALGORITHMS,
    ResumableSearch,
    astar,
    goal_gap,
    make_resumable_search,
    uniform_cost_search,
)


class TestResumableSearch:
    @pytest.mark.parametrize("algorithm", SEARCH_ALGORITHMS)
    def test_every_algorithm_solves_hanoi3(self, hanoi3, algorithm):
        search = make_resumable_search(hanoi3, algorithm=algorithm)
        plan = None
        while not search.done:
            plan = search.step(64)
            if plan is not None:
                break
        assert search.solved
        assert hanoi3.is_goal(hanoi3.execute(plan))

    def test_slice_invariance(self, hanoi3):
        """Stepping in slices of 1 visits the same nodes as one big step."""
        sliced = make_resumable_search(hanoi3, algorithm="astar")
        while not sliced.done and sliced.step(1) is None:
            pass
        bulk = make_resumable_search(hanoi3, algorithm="astar")
        bulk.step(1_000_000)
        assert sliced.plan == bulk.plan
        assert sliced.expanded == bulk.expanded

    def test_astar_matches_one_shot(self, hanoi3):
        resumable = make_resumable_search(hanoi3, algorithm="astar")
        resumable.step(1_000_000)
        one_shot = astar(hanoi3, heuristic=goal_gap(hanoi3))
        assert list(resumable.plan) == list(one_shot.plan)
        assert resumable.cost == one_shot.cost

    def test_ucs_is_optimal(self):
        domain = HanoiDomain(4)
        resumable = make_resumable_search(domain, algorithm="ucs")
        resumable.step(1_000_000)
        reference = uniform_cost_search(domain)
        assert resumable.solved
        assert len(resumable.plan) == domain.optimal_length == reference.plan_length

    def test_budget_respected(self, hanoi3):
        search = make_resumable_search(hanoi3, algorithm="ucs")
        assert search.step(5) is None or search.expanded <= 5
        assert search.expanded <= 5

    def test_exhaustion_and_done(self, hanoi3):
        search = make_resumable_search(hanoi3, algorithm="gbfs", max_expansions=3)
        while not search.done:
            search.step(2)
        assert not search.solved
        assert search.plan is None

    def test_start_state_override(self, hanoi3):
        goal = ((), (3, 2, 1), ())
        search = make_resumable_search(hanoi3, algorithm="gbfs", start_state=goal)
        plan = search.step(4)
        assert search.solved and len(plan) == 0

    def test_unknown_algorithm_rejected(self, hanoi3):
        with pytest.raises(ValueError, match="algorithm must be one of"):
            make_resumable_search(hanoi3, algorithm="dfs")

    def test_direct_construction_greedy(self, hanoi3):
        search = ResumableSearch(hanoi3, heuristic=goal_gap(hanoi3), greedy=True)
        while not search.done and search.step(32) is None:
            pass
        assert search.solved
