"""Tests for PlanningProblem and Plan simulation."""

import pytest

from repro.planning import Operation, Plan, PlanningProblem, atom, simulate


def _two_step_problem():
    """start --a--> mid --b--> goal"""
    ops = (
        Operation("a", preconditions={atom("start")}, add={atom("mid")}, delete={atom("start")}),
        Operation("b", preconditions={atom("mid")}, add={atom("goal")}, delete={atom("mid")}),
    )
    conditions = {atom("start"), atom("mid"), atom("goal")}
    return PlanningProblem(
        conditions=conditions,
        operations=ops,
        initial={atom("start")},
        goal={atom("goal")},
        name="two-step",
    )


class TestPlanningProblem:
    def test_valid_operations_order_and_content(self):
        p = _two_step_problem()
        assert [op.name for op in p.valid_operations(p.initial)] == ["a"]

    def test_is_goal_and_satisfaction(self):
        p = _two_step_problem()
        assert not p.is_goal(p.initial)
        assert p.goal_satisfaction(p.initial) == 0.0
        assert p.is_goal(frozenset({atom("goal"), atom("mid")}))

    def test_successors(self):
        p = _two_step_problem()
        succ = p.successors(p.initial)
        assert len(succ) == 1
        op, state = succ[0]
        assert op.name == "a" and atom("mid") in state

    def test_initial_outside_universe_rejected(self):
        with pytest.raises(ValueError, match="initial"):
            PlanningProblem(
                conditions={atom("a")},
                operations=(),
                initial={atom("zzz")},
                goal={atom("a")},
            )

    def test_goal_outside_universe_rejected(self):
        with pytest.raises(ValueError, match="goal"):
            PlanningProblem(
                conditions={atom("a")},
                operations=(),
                initial={atom("a")},
                goal={atom("zzz")},
            )

    def test_duplicate_operation_names_rejected(self):
        op = Operation("dup", add={atom("a")})
        with pytest.raises(ValueError, match="duplicate"):
            PlanningProblem(
                conditions={atom("a")},
                operations=(op, op),
                initial={atom("a")},
                goal={atom("a")},
            )

    def test_restarted_from(self):
        p = _two_step_problem()
        q = p.restarted_from({atom("mid")})
        assert q.initial == frozenset({atom("mid")})
        assert q.goal == p.goal

    def test_with_goal(self):
        p = _two_step_problem()
        q = p.with_goal({atom("mid")})
        assert q.is_goal(frozenset({atom("mid")}))

    def test_operation_by_name(self):
        p = _two_step_problem()
        assert p.operation_by_name["a"].name == "a"


class TestPlanSimulation:
    def test_solving_plan(self):
        p = _two_step_problem()
        plan = Plan((p.operations[0], p.operations[1]))
        result = simulate(plan, p)
        assert result.solves
        assert result.executed == 2
        assert result.cost == 2.0
        assert result.first_goal_index == 2
        assert len(result.states) == 3

    def test_invalid_plan_stops(self):
        p = _two_step_problem()
        plan = Plan((p.operations[1],))  # b before a
        result = simulate(plan, p)
        assert not result.is_valid
        assert result.invalid_index == 0
        assert result.executed == 0

    def test_skip_invalid_mode(self):
        p = _two_step_problem()
        plan = Plan((p.operations[1], p.operations[0], p.operations[1]))
        result = simulate(plan, p, stop_at_invalid=False)
        assert result.invalid_index == 0  # first invalid recorded
        assert result.reaches_goal  # but execution continued around it

    def test_empty_plan(self):
        p = _two_step_problem()
        result = Plan(()).simulate(p)
        assert result.is_valid and not result.reaches_goal
        assert result.executed == 0

    def test_plan_concat_and_prefix(self):
        p = _two_step_problem()
        a = Plan((p.operations[0],))
        b = Plan((p.operations[1],))
        combined = a.concat(b)
        assert combined.solves(p)
        assert len(combined.prefix(1)) == 1

    def test_plan_cost_property(self):
        p = _two_step_problem()
        assert Plan(p.operations).cost == 2.0

    def test_first_goal_index_zero_when_start_is_goal(self):
        p = _two_step_problem().restarted_from({atom("goal")})
        result = Plan(()).simulate(p)
        assert result.first_goal_index == 0
        assert result.solves
