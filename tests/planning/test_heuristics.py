"""Tests for planning heuristics (goal-count, h_add, h_max, goal_gap)."""

import math

import pytest

from repro.domains import HanoiDomain, hanoi_strips_problem
from repro.planning import Operation, PlanningProblem, atom
from repro.planning.search import (
    astar,
    breadth_first_search,
    goal_count,
    goal_gap,
    make_h_add,
    make_h_max,
    zero_heuristic,
)


def _chain(length):
    ops = tuple(
        Operation(f"op{i}", preconditions={atom(f"p{i-1}")}, add={atom(f"p{i}")})
        for i in range(1, length + 1)
    )
    return PlanningProblem(
        conditions={atom(f"p{i}") for i in range(length + 1)},
        operations=ops,
        initial={atom("p0")},
        goal={atom(f"p{length}")},
    )


class TestZeroAndGoalGap:
    def test_zero(self):
        assert zero_heuristic(object()) == 0.0

    def test_goal_gap_scales(self, hanoi3):
        h = goal_gap(hanoi3, scale=10.0)
        assert h(hanoi3.initial_state) == pytest.approx(10.0)
        assert h(((), (3, 2, 1), ())) == pytest.approx(0.0)


class TestGoalCount:
    def test_counts_unsatisfied(self):
        p = _chain(2).with_goal({atom("p1"), atom("p2")})
        h = goal_count(p)
        assert h(p.initial) == 2.0
        assert h(frozenset({atom("p1")})) == 1.0
        assert h(frozenset({atom("p1"), atom("p2")})) == 0.0


class TestHMaxHAdd:
    def test_exact_on_chain(self):
        p = _chain(4)
        hmax = make_h_max(p)
        hadd = make_h_add(p)
        # Single serial goal: both relaxations are exact here.
        assert hmax(p.initial) == pytest.approx(4.0)
        assert hadd(p.initial) == pytest.approx(4.0)

    def test_zero_at_goal(self):
        p = _chain(3)
        goal_state = frozenset({atom("p0"), atom("p1"), atom("p2"), atom("p3")})
        assert make_h_max(p)(goal_state) == 0.0
        assert make_h_add(p)(goal_state) == 0.0

    def test_unreachable_goal_is_infinite(self):
        p = PlanningProblem(
            conditions={atom("a"), atom("g")},
            operations=(),
            initial={atom("a")},
            goal={atom("g")},
        )
        assert make_h_max(p)(p.initial) == math.inf
        assert make_h_add(p)(p.initial) == math.inf

    def test_hadd_dominates_hmax(self):
        p = hanoi_strips_problem(3)
        hmax = make_h_max(p)
        hadd = make_h_add(p)
        assert hadd(p.initial) >= hmax(p.initial)

    def test_hmax_admissible_on_hanoi(self):
        """h_max never exceeds the true optimal cost (checked at the root)."""
        p = hanoi_strips_problem(3)
        assert make_h_max(p)(p.initial) <= 7.0

    def test_astar_with_hmax_is_optimal(self):
        from repro.planning import StripsDomainAdapter

        p = hanoi_strips_problem(3)
        d = StripsDomainAdapter(p)
        r = astar(d, heuristic=make_h_max(p))
        assert r.solved and r.plan_length == 7

    def test_costs_respected(self):
        # One expensive and one cheap achiever for the goal.
        ops = (
            Operation("cheap", preconditions={atom("s")}, add={atom("g")}, cost=1.0),
            Operation("dear", preconditions={atom("s")}, add={atom("g")}, cost=10.0),
        )
        p = PlanningProblem(
            conditions={atom("s"), atom("g")},
            operations=ops,
            initial={atom("s")},
            goal={atom("g")},
        )
        assert make_h_max(p)(p.initial) == pytest.approx(1.0)
