"""Tests for plan reuse (prefix matching + repair)."""

import pytest

from repro.domains import HanoiDomain, SlidingTileDomain, optimal_hanoi_moves
from repro.planning.reuse import ReuseResult, reuse_plan, valid_prefix
from repro.planning.search import breadth_first_search


def _bfs_replanner(max_expansions=500_000):
    def plan(domain, start_state):
        r = breadth_first_search(domain, start_state=start_state, max_expansions=max_expansions)
        return r.plan

    return plan


class TestValidPrefix:
    def test_full_plan_valid(self, hanoi3):
        plan = optimal_hanoi_moves(3)
        assert valid_prefix(hanoi3, plan, hanoi3.initial_state) == 7

    def test_detects_first_invalid(self, hanoi3):
        plan = list(optimal_hanoi_moves(3))
        plan[2], plan[3] = plan[3], plan[2]  # scramble the middle
        k = valid_prefix(hanoi3, plan, hanoi3.initial_state)
        assert k < 7

    def test_empty_plan(self, hanoi3):
        assert valid_prefix(hanoi3, [], hanoi3.initial_state) == 0


class TestReusePlan:
    def test_identical_problem_reuses_everything(self, hanoi3):
        plan = optimal_hanoi_moves(3)
        result = reuse_plan(hanoi3, plan, _bfs_replanner())
        assert result.solved
        assert result.repaired == 0
        assert result.reuse_fraction == 1.0
        assert tuple(result.plan) == tuple(plan)

    def test_changed_start_state_repairs(self, hanoi3):
        """Perturbed initial state: most of the old plan is invalid; reuse
        keeps what it can and repair completes the job."""
        plan = optimal_hanoi_moves(3)
        ops = hanoi3.valid_operations(hanoi3.initial_state)
        perturbed = hanoi3.apply(hanoi3.initial_state, ops[-1])
        result = reuse_plan(hanoi3, plan, _bfs_replanner(), start_state=perturbed)
        assert result.solved
        state = perturbed
        for op in result.plan:
            assert op in list(hanoi3.valid_operations(state))
            state = hanoi3.apply(state, op)
        assert hanoi3.is_goal(state)

    def test_changed_goal_repairs(self):
        """Same mechanics, different goal stake (computation steering)."""
        old_domain = HanoiDomain(3, goal_stake=1)
        new_domain = HanoiDomain(3, goal_stake=2)
        plan = optimal_hanoi_moves(3, dst=1)
        result = reuse_plan(new_domain, plan, _bfs_replanner())
        assert result.solved
        final = new_domain.execute(result.plan)
        assert new_domain.is_goal(final)

    def test_close_problems_reuse_more_than_distant(self, hanoi5):
        """Nebel & Koehler's regime: reuse pays when problems are close."""
        plan = optimal_hanoi_moves(5)
        # Close: start one step along the optimal path.
        close_start = hanoi5.apply(hanoi5.initial_state, plan[0])
        close = reuse_plan(hanoi5, plan[1:], _bfs_replanner(), start_state=close_start)
        assert close.solved and close.reuse_fraction == 1.0

    def test_failed_repair_reported(self, hanoi5):
        def hopeless(domain, start_state):
            return None

        result = reuse_plan(hanoi5, [], hopeless)
        assert not result.solved
        assert result.plan is None

    def test_cut_prefers_goal_progress(self, hanoi3):
        """A valid old plan that wanders away gets cut early: the chosen
        prefix end maximises goal fitness, not prefix length."""
        # Move d1 A->B (fitness up), then B->C (fitness back down).
        from repro.domains import HanoiMove

        wander = [HanoiMove(0, 1), HanoiMove(1, 2)]
        result = reuse_plan(hanoi3, wander, _bfs_replanner())
        assert result.solved
        assert result.reused <= 1  # kept at most the useful first move

    def test_works_on_tiles(self, tile3):
        opt = breadth_first_search(tile3).plan
        # Perturb the start by one blank move.
        mv = tile3.valid_operations(tile3.initial_state)[0]
        start = tile3.apply(tile3.initial_state, mv)
        result = reuse_plan(tile3, opt, _bfs_replanner(), start_state=start)
        assert result.solved
