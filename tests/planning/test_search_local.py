"""Tests for hill climbing, greedy best-first, and the randomized planner."""

import pytest

from repro.core import make_rng
from repro.domains import HanoiDomain, SlidingTileDomain
from repro.planning.search import (
    goal_gap,
    greedy_best_first,
    hill_climbing,
    random_walk_planner,
)


class TestHillClimbing:
    def test_solves_tile3_with_manhattan(self, tile3):
        r = hill_climbing(tile3, lambda s: float(tile3.manhattan(s)), make_rng(0))
        assert r.solved
        assert tile3.is_goal(tile3.execute(r.plan))

    def test_solves_hanoi_with_goal_gap(self, hanoi3):
        r = hill_climbing(
            hanoi3, goal_gap(hanoi3, scale=16.0), make_rng(1), max_restarts=50
        )
        assert r.solved

    def test_deterministic_for_seed(self, tile3):
        h = lambda s: float(tile3.manhattan(s))
        a = hill_climbing(tile3, h, make_rng(3))
        b = hill_climbing(tile3, h, make_rng(3))
        assert a.plan == b.plan

    def test_restart_budget_respected(self, hanoi5):
        # A hopeless heuristic (constant) with minimal budget fails cleanly.
        r = hill_climbing(
            hanoi5, lambda s: 1.0, make_rng(4), max_steps=5, max_restarts=2
        )
        assert not r.solved
        assert r.plan is None


class TestGreedyBestFirst:
    def test_solves_tile3(self, tile3):
        r = greedy_best_first(tile3, lambda s: float(tile3.manhattan(s)))
        assert r.solved

    def test_fewer_expansions_than_astar(self, tile3):
        from repro.planning.search import astar

        h = lambda s: float(tile3.manhattan(s))
        greedy = greedy_best_first(tile3, h)
        optimal = astar(tile3, heuristic=h)
        assert greedy.expanded <= optimal.expanded

    def test_budget(self, tile3):
        r = greedy_best_first(tile3, lambda s: 0.0, max_expansions=3)
        assert not r.solved


class TestRandomWalk:
    def test_solves_small_hanoi(self):
        r = random_walk_planner(
            HanoiDomain(3), make_rng(0), walk_length=200, max_walks=300
        )
        assert r.solved

    def test_greedy_bias_helps(self, tile3):
        h = lambda s: float(tile3.manhattan(s))
        pure = random_walk_planner(
            tile3, make_rng(1), walk_length=300, max_walks=30
        )
        biased = random_walk_planner(
            tile3, make_rng(1), walk_length=300, max_walks=30,
            greedy_bias=0.8, heuristic=h,
        )
        # Pure random walk virtually never solves 3x3 from the reversed
        # start in this budget; the biased one should do no worse.
        assert biased.solved or not pure.solved

    def test_bias_requires_heuristic(self, hanoi3, rng):
        with pytest.raises(ValueError, match="heuristic"):
            random_walk_planner(hanoi3, rng, greedy_bias=0.5)

    def test_bad_bias_rejected(self, hanoi3, rng):
        with pytest.raises(ValueError):
            random_walk_planner(hanoi3, rng, greedy_bias=1.5, heuristic=lambda s: 0.0)

    def test_failure_returns_none_plan(self):
        r = random_walk_planner(
            HanoiDomain(6), make_rng(2), walk_length=10, max_walks=2
        )
        assert not r.solved and r.plan is None
