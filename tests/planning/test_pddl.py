"""Tests for the PDDL-lite frontend."""

import pytest

from repro.planning import Plan, StripsDomainAdapter, atom
from repro.planning.pddl import PddlError, load_problem, parse_domain, parse_problem
from repro.planning.search import breadth_first_search, graphplan

BLOCKS_DOMAIN = """
; four-operator blocks world
(define (domain blocks)
  (:requirements :strips :typing)
  (:predicates (on ?x ?y) (ontable ?x) (clear ?x) (handempty) (holding ?x))
  (:action pickup
    :parameters (?b - block)
    :precondition (and (clear ?b) (ontable ?b) (handempty))
    :effect (and (holding ?b) (not (clear ?b)) (not (ontable ?b)) (not (handempty))))
  (:action putdown
    :parameters (?b - block)
    :precondition (holding ?b)
    :effect (and (clear ?b) (ontable ?b) (handempty) (not (holding ?b))))
  (:action stack
    :parameters (?b - block ?under - block)
    :precondition (and (holding ?b) (clear ?under))
    :effect (and (on ?b ?under) (clear ?b) (handempty)
                 (not (holding ?b)) (not (clear ?under))))
  (:action unstack
    :parameters (?b - block ?under - block)
    :precondition (and (on ?b ?under) (clear ?b) (handempty))
    :effect (and (holding ?b) (clear ?under)
                 (not (on ?b ?under)) (not (clear ?b)) (not (handempty)))))
"""

SWAP_PROBLEM = """
(define (problem swap)
  (:domain blocks)
  (:objects a b - block)
  (:init (ontable a) (on b a) (clear b) (handempty))
  (:goal (and (on a b) (ontable b))))
"""


class TestParser:
    def test_domain_parses(self):
        d = parse_domain(BLOCKS_DOMAIN)
        assert d.name == "blocks"
        assert {s.name for s in d.schemas} == {"pickup", "putdown", "stack", "unstack"}
        assert d.predicates["on"] == 2
        assert d.predicates["handempty"] == 0

    def test_comments_ignored(self):
        d = parse_domain("; hello\n" + BLOCKS_DOMAIN)
        assert d.name == "blocks"

    def test_action_cost_slot(self):
        text = """
        (define (domain d)
          (:action go
            :parameters (?x)
            :precondition (at ?x)
            :effect (and (seen ?x))
            :cost 2.5))
        """
        d = parse_domain(text)
        ops = d.ground({"object": ["p"]})
        assert ops[0].cost == 2.5

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(PddlError, match="unbalanced"):
            parse_domain("(define (domain d)")

    def test_negative_precondition_rejected(self):
        text = """
        (define (domain d)
          (:action bad
            :parameters (?x)
            :precondition (not (at ?x))
            :effect (and (seen ?x))))
        """
        with pytest.raises(PddlError, match="negative preconditions"):
            parse_domain(text)

    def test_empty_effect_rejected(self):
        text = """
        (define (domain d)
          (:action noop
            :parameters (?x)
            :precondition (at ?x)
            :effect (and)))
        """
        with pytest.raises(PddlError, match="no effect"):
            parse_domain(text)

    def test_unknown_section_rejected(self):
        with pytest.raises(PddlError, match="unsupported domain section"):
            parse_domain("(define (domain d) (:functions (f)) )")

    def test_unsupported_requirement_rejected(self):
        with pytest.raises(PddlError, match="unsupported requirements"):
            parse_domain(
                "(define (domain d) (:requirements :adl) "
                "(:action a :parameters (?x) :effect (and (p ?x))))"
            )

    def test_no_actions_rejected(self):
        with pytest.raises(PddlError, match="no actions"):
            parse_domain("(define (domain d) (:predicates (p ?x)))")

    def test_domain_name_mismatch(self):
        d = parse_domain(BLOCKS_DOMAIN)
        bad = SWAP_PROBLEM.replace("(:domain blocks)", "(:domain other)")
        with pytest.raises(PddlError, match="targets domain"):
            parse_problem(bad, d)


class TestGroundedProblem:
    def test_problem_structure(self):
        p = load_problem(BLOCKS_DOMAIN, SWAP_PROBLEM)
        assert p.name == "swap"
        assert atom("on", "b", "a") in p.initial
        assert p.goal == frozenset({atom("on", "a", "b"), atom("ontable", "b")})
        # 2 blocks: pickup/putdown x2, stack/unstack x2 ordered pairs = 4+4.
        assert len(p.operations) == 2 + 2 + 2 + 2

    def test_bfs_solves_it(self):
        p = load_problem(BLOCKS_DOMAIN, SWAP_PROBLEM)
        r = breadth_first_search(StripsDomainAdapter(p))
        assert r.solved
        assert Plan(r.plan).solves(p)
        # unstack b, putdown b, pickup a, stack a b — optimal is 4.
        assert r.plan_length == 4

    def test_graphplan_solves_it(self):
        p = load_problem(BLOCKS_DOMAIN, SWAP_PROBLEM)
        r = graphplan(p, max_levels=12)
        assert r.solved
        assert Plan(r.plan).solves(p)

    def test_matches_python_blocks_world(self):
        """The PDDL encoding and the Python builder agree on plan length."""
        from repro.domains import blocks_world_problem

        py = blocks_world_problem([["a", "b"]], [["b", "a"]])
        pddl = load_problem(
            BLOCKS_DOMAIN,
            """
            (define (problem swap2)
              (:domain blocks)
              (:objects a b - block)
              (:init (ontable a) (on b a) (clear b) (handempty))
              (:goal (and (ontable b) (on a b))))
            """,
        )
        r_py = breadth_first_search(StripsDomainAdapter(py))
        r_pd = breadth_first_search(StripsDomainAdapter(pddl))
        assert r_py.plan_length == r_pd.plan_length == 4

    def test_untyped_objects(self):
        domain = """
        (define (domain walk)
          (:action go
            :parameters (?from ?to)
            :precondition (at ?from)
            :effect (and (at ?to) (not (at ?from)))))
        """
        problem = """
        (define (problem stroll)
          (:domain walk)
          (:objects home park)
          (:init (at home))
          (:goal (at park)))
        """
        p = load_problem(domain, problem)
        r = breadth_first_search(StripsDomainAdapter(p))
        assert r.solved and r.plan_length == 1

    def test_ga_plans_pddl_problem(self):
        from repro.core import GAConfig, GAPlanner

        p = load_problem(BLOCKS_DOMAIN, SWAP_PROBLEM)
        d = StripsDomainAdapter(p)
        cfg = GAConfig(population_size=60, generations=80, max_len=30, init_length=8)
        outcome = GAPlanner(d, cfg, seed=1).solve()
        assert outcome.solved
        assert Plan(outcome.plan).solves(p)
