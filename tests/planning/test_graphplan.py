"""Tests for the Graphplan planner."""

import pytest

from repro.domains import blocks_world_problem, hanoi_strips_problem
from repro.planning import Operation, Plan, PlanningProblem, atom
from repro.planning.search import graphplan
from repro.planning.search.graphplan import PlanningGraph


def _chain_problem(length=3):
    """p0 --op1--> p1 --op2--> ... linear chain."""
    ops = tuple(
        Operation(
            f"op{i}",
            preconditions={atom(f"p{i - 1}")},
            add={atom(f"p{i}")},
        )
        for i in range(1, length + 1)
    )
    conditions = {atom(f"p{i}") for i in range(length + 1)}
    return PlanningProblem(
        conditions=conditions,
        operations=ops,
        initial={atom("p0")},
        goal={atom(f"p{length}")},
    )


class TestGraphplan:
    def test_linear_chain(self):
        p = _chain_problem(4)
        r = graphplan(p)
        assert r.solved
        assert r.plan_length == 4
        assert Plan(r.plan).solves(p)

    def test_trivial_goal_already_true(self):
        p = _chain_problem(2).with_goal({atom("p0")})
        r = graphplan(p)
        assert r.solved and r.plan_length == 0

    def test_hanoi3_optimal(self):
        p = hanoi_strips_problem(3)
        r = graphplan(p, max_levels=15)
        assert r.solved
        assert r.plan_length == 7  # Hanoi admits no parallelism
        assert Plan(r.plan).solves(p)

    def test_blocks_world(self):
        p = blocks_world_problem([["a", "b", "c"]], [["c", "b", "a"]])
        r = graphplan(p, max_levels=20)
        assert r.solved
        assert Plan(r.plan).solves(p)

    def test_unsolvable_detected(self):
        p = _chain_problem(2).with_goal({atom("p0"), atom("p2")})
        # p0 is deleted by nothing, so this IS solvable; build a truly
        # unreachable goal instead.
        q = PlanningProblem(
            conditions={atom("a"), atom("g")},
            operations=(),
            initial={atom("a")},
            goal={atom("g")},
        )
        r = graphplan(q)
        assert not r.solved
        assert r.exhausted

    def test_max_levels_budget(self):
        p = hanoi_strips_problem(4)
        r = graphplan(p, max_levels=3)  # optimum needs 15 levels
        assert not r.solved
        assert not r.exhausted  # gave up on budget, not proven unsolvable

    def test_parallel_actions_serialise_correctly(self):
        # Two independent goals achievable in one parallel step.
        ops = (
            Operation("left", preconditions={atom("s")}, add={atom("g1")}),
            Operation("right", preconditions={atom("s")}, add={atom("g2")}),
        )
        p = PlanningProblem(
            conditions={atom("s"), atom("g1"), atom("g2")},
            operations=ops,
            initial={atom("s")},
            goal={atom("g1"), atom("g2")},
        )
        r = graphplan(p)
        assert r.solved
        assert r.plan_length == 2  # both actions, one level, serialised
        assert r.expanded == 1  # one graph level built
        assert Plan(r.plan).solves(p)

    def test_mutex_forces_two_levels(self):
        # Same two goals, but the actions interfere (each deletes s), so
        # they cannot share a level... after the first, s is gone, so the
        # instance is actually unsolvable — a classic mutex scenario.
        ops = (
            Operation("left", preconditions={atom("s")}, add={atom("g1")}, delete={atom("s")}),
            Operation("right", preconditions={atom("s")}, add={atom("g2")}, delete={atom("s")}),
        )
        p = PlanningProblem(
            conditions={atom("s"), atom("g1"), atom("g2")},
            operations=ops,
            initial={atom("s")},
            goal={atom("g1"), atom("g2")},
        )
        r = graphplan(p, max_levels=10)
        assert not r.solved


class TestPlanningGraph:
    def test_level_zero_is_initial_state(self):
        p = _chain_problem(2)
        g = PlanningGraph(p)
        assert set(g.levels[0].props) == set(p.initial)

    def test_expand_adds_levels(self):
        p = _chain_problem(2)
        g = PlanningGraph(p)
        g.expand()
        assert g.n_levels == 2
        assert atom("p1") in g.levels[1].prop_index

    def test_levels_off_eventually(self):
        p = _chain_problem(2)
        g = PlanningGraph(p)
        for _ in range(6):
            g.expand()
        assert g.levelled_off()

    def test_noop_carries_propositions_forward(self):
        p = _chain_problem(2)
        g = PlanningGraph(p)
        g.expand()
        assert atom("p0") in g.levels[1].prop_index
