"""Tests for the STRIPS-to-domain adapter."""

import pytest

from repro.core import GAConfig, GAPlanner
from repro.domains import hanoi_strips_problem
from repro.planning import Operation, PlanningProblem, StripsDomainAdapter, atom


def _problem():
    ops = (
        Operation("a", preconditions={atom("s")}, add={atom("m")}, delete={atom("s")}, cost=2.5),
        Operation("b", preconditions={atom("m")}, add={atom("g")}),
    )
    return PlanningProblem(
        conditions={atom("s"), atom("m"), atom("g")},
        operations=ops,
        initial={atom("s")},
        goal={atom("g"), atom("m")},
        name="tiny",
    )


class TestAdapter:
    def test_protocol_surface(self):
        d = StripsDomainAdapter(_problem())
        assert d.initial_state == frozenset({atom("s")})
        assert [op.name for op in d.valid_operations(d.initial_state)] == ["a"]
        nxt = d.apply(d.initial_state, d.problem.operations[0])
        assert atom("m") in nxt
        assert d.name == "tiny"

    def test_default_goal_fitness_is_fraction(self):
        d = StripsDomainAdapter(_problem())
        assert d.goal_fitness(d.initial_state) == 0.0
        assert d.goal_fitness(frozenset({atom("m")})) == pytest.approx(0.5)
        assert d.goal_fitness(frozenset({atom("m"), atom("g")})) == 1.0

    def test_custom_goal_fitness(self):
        d = StripsDomainAdapter(_problem(), goal_fitness_fn=lambda p, s: 0.25)
        assert d.goal_fitness(d.initial_state) == 0.25

    def test_custom_goal_fitness_range_checked(self):
        d = StripsDomainAdapter(_problem(), goal_fitness_fn=lambda p, s: 7.0)
        with pytest.raises(ValueError):
            d.goal_fitness(d.initial_state)

    def test_operation_cost_passthrough(self):
        d = StripsDomainAdapter(_problem())
        assert d.operation_cost(d.problem.operations[0]) == 2.5

    def test_valid_ops_cached(self):
        d = StripsDomainAdapter(_problem())
        a = d.valid_operations(d.initial_state)
        b = d.valid_operations(d.initial_state)
        assert a is b

    def test_ga_solves_strips_hanoi(self):
        d = StripsDomainAdapter(hanoi_strips_problem(3))
        cfg = GAConfig(population_size=60, generations=120, max_len=40, init_length=7)
        outcome = GAPlanner(d, cfg, seed=0).solve()
        assert outcome.solved
        # Validate via the problem's own machinery.
        plan = d.to_plan(outcome.plan)
        assert plan.solves(d.problem)
