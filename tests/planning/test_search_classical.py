"""Tests for BFS / UCS / A* / weighted A* / IDA*."""

import pytest

from repro.domains import HanoiDomain, SlidingTileDomain, hanoi_strips_problem
from repro.planning import StripsDomainAdapter
from repro.planning.search import (
    astar,
    breadth_first_search,
    idastar,
    uniform_cost_search,
    weighted_astar,
)


class TestBFS:
    @pytest.mark.parametrize("n,optimal", [(1, 1), (2, 3), (3, 7), (4, 15)])
    def test_optimal_on_hanoi(self, n, optimal):
        r = breadth_first_search(HanoiDomain(n))
        assert r.solved
        assert r.plan_length == optimal

    def test_plan_replays_to_goal(self, hanoi3):
        r = breadth_first_search(hanoi3)
        assert hanoi3.is_goal(hanoi3.execute(r.plan))

    def test_start_at_goal(self, hanoi3):
        r = breadth_first_search(hanoi3, start_state=((), (3, 2, 1), ()))
        assert r.solved and r.plan_length == 0

    def test_expansion_budget(self, tile3):
        r = breadth_first_search(tile3, max_expansions=10)
        assert not r.solved
        assert not r.exhausted  # budget, not exhaustion

    def test_exhaustion_detected(self):
        from repro.planning import Operation, PlanningProblem, atom

        # Unreachable goal in a 2-state space.
        p = PlanningProblem(
            conditions={atom("a"), atom("b"), atom("g")},
            operations=(Operation("ab", preconditions={atom("a")}, add={atom("b")}),),
            initial={atom("a")},
            goal={atom("g")},
        )
        r = breadth_first_search(StripsDomainAdapter(p))
        assert not r.solved and r.exhausted


class TestAStar:
    def test_optimal_with_admissible_heuristic(self, tile3):
        r = astar(tile3, heuristic=lambda s: float(tile3.manhattan(s)))
        assert r.solved
        # BFS-verified optimum for the reversed 3×3 start.
        bfs = breadth_first_search(tile3)
        assert r.plan_length == bfs.plan_length

    def test_zero_heuristic_equals_ucs(self, hanoi3):
        a = astar(hanoi3)
        u = uniform_cost_search(hanoi3)
        assert a.plan_length == u.plan_length == 7

    def test_heuristic_reduces_expansions(self, tile3):
        blind = breadth_first_search(tile3)
        informed = astar(tile3, heuristic=lambda s: float(tile3.manhattan(s)))
        assert informed.expanded < blind.expanded / 10

    def test_weight_below_one_rejected(self, hanoi3):
        with pytest.raises(ValueError):
            astar(hanoi3, weight=0.5)

    def test_budget_respected(self, tile3):
        r = astar(tile3, heuristic=lambda s: 0.0, max_expansions=5)
        assert not r.solved and r.expanded <= 5


class TestWeightedAStar:
    def test_solves_but_may_be_suboptimal(self, tile3):
        h = lambda s: float(tile3.manhattan(s))
        opt = astar(tile3, heuristic=h)
        w = weighted_astar(tile3, h, weight=3.0)
        assert w.solved
        assert w.plan_length >= opt.plan_length
        assert w.expanded <= opt.expanded

    def test_plan_is_executable(self, tile3):
        w = weighted_astar(tile3, lambda s: float(tile3.manhattan(s)), weight=2.0)
        assert tile3.is_goal(tile3.execute(w.plan))


class TestIDAStar:
    def test_optimal_on_tile3(self, tile3):
        h = lambda s: float(tile3.manhattan(s))
        r = idastar(tile3, h)
        opt = astar(tile3, heuristic=h)
        assert r.solved
        assert r.plan_length == opt.plan_length

    def test_optimal_on_hanoi(self, hanoi3):
        r = idastar(hanoi3, lambda s: 0.0)
        assert r.solved and r.plan_length == 7

    def test_start_at_goal(self, tile3):
        r = idastar(tile3, lambda s: float(tile3.manhattan(s)), start_state=tile3.goal_state)
        assert r.solved and r.plan_length == 0


class TestOnStripsAdapter:
    def test_bfs_matches_native_hanoi(self):
        native = breadth_first_search(HanoiDomain(3))
        strips = breadth_first_search(StripsDomainAdapter(hanoi_strips_problem(3)))
        assert native.plan_length == strips.plan_length == 7
