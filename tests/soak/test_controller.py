"""Units for churn classification and the replan degradation ladder."""

import pytest

from repro.grid.simulator import GridEvent
from repro.grid.workflow_domain import GridWorkflowDomain, RunProgram, Transfer
from repro.obs import MetricsRegistry, Tracer
from repro.soak import ArrivalStream, ReplanController, request_domain, soak_ontology
from repro.soak.controller import _greedy, relaxed_feasible


def _scenario(seed=3):
    """One planned request on a fresh soak grid."""
    onto = soak_ontology(seed=seed)
    (req,) = ArrivalStream("arrival:rate=1.0,n=1", seed=seed).requests(onto, 100.0)
    domain = request_domain(onto, req, n_stages=3)
    plan = _greedy(domain, domain.initial_state)
    assert plan is not None
    return onto, req, domain, tuple(plan)


class TestInvalidates:
    def setup_method(self):
        self.onto, self.req, self.domain, self.plan = _scenario()
        self.controller = ReplanController(
            self.onto, tracer=Tracer([]), metrics=MetricsRegistry()
        )

    def test_fail_hits_run_program_machine(self):
        run_ops = [op for op in self.plan if isinstance(op, RunProgram)]
        assert run_ops, "scenario plan should run at least one program"
        ev = GridEvent(time=1.0, kind="fail", machine=run_ops[0].machine)
        assert self.controller.invalidates(ev, self.plan)

    def test_fail_on_untouched_machine_is_soft(self):
        touched = set()
        for op in self.plan:
            if isinstance(op, RunProgram):
                touched.add(op.machine)
            elif isinstance(op, Transfer):
                touched.update((op.src, op.dst))
        untouched = [m for m in self.onto.topology.machine_names() if m not in touched]
        assert untouched, "grid should have spare machines"
        ev = GridEvent(time=1.0, kind="fail", machine=untouched[0])
        assert not self.controller.invalidates(ev, self.plan)

    def test_fail_hits_transfer_endpoint(self):
        transfers = [op for op in self.plan if isinstance(op, Transfer)]
        if not transfers:
            pytest.skip("plan has no transfer")
        ev = GridEvent(time=1.0, kind="fail", machine=transfers[0].src)
        assert self.controller.invalidates(ev, self.plan)

    def test_partition_hits_cross_site_transfer(self):
        machines = self.onto.topology.machines
        cross = [
            op
            for op in self.plan
            if isinstance(op, Transfer)
            and machines[op.src].site != machines[op.dst].site
        ]
        if not cross:
            pytest.skip("plan stays within one site")
        op = cross[0]
        ev = GridEvent(
            time=1.0,
            kind="partition",
            machine=machines[op.src].site,
            peer=machines[op.dst].site,
        )
        assert self.controller.invalidates(ev, self.plan)

    def test_soft_kinds_never_invalidate(self):
        machine = self.onto.topology.machine_names()[0]
        sites = sorted({m.site for m in self.onto.topology.machines.values()})
        soft = [
            GridEvent(time=1.0, kind="restore", machine=machine),
            GridEvent(time=1.0, kind="load", machine=machine, value=3.0),
            GridEvent(
                time=1.0, kind="link-degrade", machine=sites[0], peer=sites[1], value=2.0
            ),
            GridEvent(time=1.0, kind="link-restore", machine=sites[0], peer=sites[1]),
        ]
        for ev in soft:
            assert not self.controller.invalidates(ev, self.plan)


class TestRelaxedFeasible:
    def test_feasible_on_healthy_grid(self):
        _onto, _req, domain, _plan = _scenario()
        assert relaxed_feasible(domain, domain.initial_state)

    def test_infeasible_when_source_machine_down(self):
        onto, req, domain, _plan = _scenario()
        for name in onto.topology.machine_names():
            onto.topology.fail_machine(name)
        assert not relaxed_feasible(domain, domain.initial_state)

    def test_infeasible_when_source_lost(self):
        _onto, _req, domain, _plan = _scenario()
        assert not relaxed_feasible(domain, frozenset())


class TestLadder:
    def test_modes_validated(self):
        onto = soak_ontology(seed=0)
        with pytest.raises(ValueError, match="mode"):
            ReplanController(onto, mode="lukewarm")
        with pytest.raises(ValueError, match="budget"):
            ReplanController(onto, replan_budget_s=0.0)

    def test_repair_rung_on_undamaged_plan(self):
        """A fully valid suffix resolves at the repair rung with full reuse."""
        onto, req, domain, plan = _scenario()
        controller = ReplanController(onto, tracer=Tracer([]), metrics=MetricsRegistry())
        decision = controller.replan(
            domain, plan, req, now=1.0, round_index=0, wall_spent_s=0.0
        )
        assert decision.rung == "repair"
        assert decision.plan == plan
        assert decision.reused == len(plan)
        assert decision.repaired == 0

    def test_infeasible_goal_sheds_without_search(self):
        onto, req, domain, plan = _scenario()
        for name in onto.topology.machine_names():
            onto.topology.fail_machine(name)
        controller = ReplanController(onto, tracer=Tracer([]), metrics=MetricsRegistry())
        decision = controller.replan(
            domain, plan, req, now=1.0, round_index=0, wall_spent_s=0.0
        )
        assert decision.rung == "none"
        assert decision.plan is None
        assert decision.seconds < 1.0  # no search budget burned

    def test_cold_mode_never_repairs(self):
        onto, req, domain, plan = _scenario()
        metrics = MetricsRegistry()
        controller = ReplanController(
            onto, mode="cold", tracer=Tracer([]), metrics=metrics
        )
        decision = controller.replan(
            domain, plan, req, now=1.0, round_index=0, wall_spent_s=0.0
        )
        assert decision.rung in ("ga-cold", "none")
        assert metrics.counter("soak_repairs").value == 0

    def test_replan_ticks_metrics(self):
        onto, req, domain, plan = _scenario()
        metrics = MetricsRegistry()
        controller = ReplanController(onto, tracer=Tracer([]), metrics=metrics)
        controller.replan(domain, plan, req, now=1.0, round_index=0, wall_spent_s=0.0)
        assert metrics.counter("soak_replans").value == 1
        assert metrics.counter("soak_repairs").value == 1
        assert metrics.histogram("replan_latency").count == 1
