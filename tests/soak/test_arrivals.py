"""Units for the soak arrival stream, shared ontology and request domains."""

import pytest

from repro.soak import ArrivalStream, request_domain, soak_ontology


class TestSoakOntology:
    def test_pipeline_registered(self):
        onto = soak_ontology(seed=0, n_stages=3)
        names = onto.program_names()
        for i in range(3):
            assert f"stage{i}" in names
            assert f"stage{i}-alt" in names
        for i in range(4):
            assert f"dt{i}" in onto.data_types

    def test_same_seed_same_grid(self):
        a = soak_ontology(seed=5)
        b = soak_ontology(seed=5)
        assert a.topology.machine_names() == b.topology.machine_names()
        assert {n: m.speed for n, m in a.topology.machines.items()} == {
            n: m.speed for n, m in b.topology.machines.items()
        }
        assert {n: p.flops for n, p in a.programs.items()} == {
            n: p.flops for n, p in b.programs.items()
        }

    def test_every_stage_hostable(self):
        onto = soak_ontology(seed=1)
        for name in onto.program_names():
            assert onto.hosts_for(name), f"{name} has no host"

    def test_needs_a_stage(self):
        with pytest.raises(ValueError, match="stage"):
            soak_ontology(seed=0, n_stages=0)


class TestArrivalStream:
    def test_deterministic(self):
        onto = soak_ontology(seed=2)
        a = ArrivalStream("arrival:rate=0.2", seed=2).requests(onto, 200.0)
        b = ArrivalStream("arrival:rate=0.2", seed=2).requests(onto, 200.0)
        assert a == b
        assert all(r.at < 200.0 for r in a)
        assert [r.request_id for r in a] == list(range(len(a)))

    def test_time_ordered(self):
        onto = soak_ontology(seed=2)
        reqs = ArrivalStream("arrival:rate=0.3", seed=0).requests(onto, 300.0)
        assert list(reqs) == sorted(reqs, key=lambda r: r.at)

    def test_rate_scales_volume(self):
        onto = soak_ontology(seed=2)
        slow = ArrivalStream("arrival:rate=0.05", seed=1).requests(onto, 400.0)
        fast = ArrivalStream("arrival:rate=0.5", seed=1).requests(onto, 400.0)
        assert len(fast) > len(slow)

    def test_cap_n(self):
        onto = soak_ontology(seed=2)
        reqs = ArrivalStream("arrival:rate=1.0,n=3", seed=0).requests(onto, 1000.0)
        assert len(reqs) == 3

    def test_clause_independence(self):
        """Adding a second clause never perturbs the first clause's draws."""
        onto = soak_ontology(seed=2)
        solo = ArrivalStream("arrival:rate=0.2", seed=4).requests(onto, 150.0)
        both = ArrivalStream("arrival:rate=0.2;arrival:rate=0.05", seed=4).requests(
            onto, 150.0
        )
        solo_times = [r.at for r in solo]
        assert set(solo_times) <= {r.at for r in both}

    def test_requires_arrival_clause(self):
        with pytest.raises(ValueError, match="arrival"):
            ArrivalStream("machine-crash:p=0.5", seed=0)

    def test_bad_duration(self):
        onto = soak_ontology(seed=2)
        with pytest.raises(ValueError, match="duration"):
            ArrivalStream("arrival:rate=0.2", seed=0).requests(onto, 0.0)


class TestRequestDomain:
    def test_requests_do_not_alias(self):
        onto = soak_ontology(seed=3)
        reqs = ArrivalStream("arrival:rate=1.0,n=2", seed=3).requests(onto, 100.0)
        d0 = request_domain(onto, reqs[0], n_stages=3)
        d1 = request_domain(onto, reqs[1], n_stages=3)
        (p0, _), = d0.initial_state
        (p1, _), = d1.initial_state
        assert p0 != p1  # distinct raw products per request

    def test_goal_names_sink(self):
        onto = soak_ontology(seed=3)
        (req,) = ArrivalStream("arrival:rate=1.0,n=1", seed=3).requests(onto, 100.0)
        domain = request_domain(onto, req, n_stages=3)
        assert domain.goal == (("dt3", req.sink),)
