"""Soak-loop determinism: same seed, byte-identical canonical event logs.

Wall-clock replan latency varies run to run, but the canonical
:meth:`SoakReport.event_log` records only simulated-time facts — so two
same-seed runs must agree to the byte even when the GA replanner's timing
does not.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soak import SoakConfig, run_soak


def _config(seed, faults="machine-crash:p=0.5,restore=30"):
    return SoakConfig(
        duration=90.0,
        arrival="arrival:rate=0.08",
        faults=faults,
        seed=seed,
        max_replans=2,
    )


class TestDeterminism:
    @given(st.integers(0, 10_000))
    @settings(max_examples=3, deadline=None)
    def test_same_seed_byte_identical_logs(self, seed):
        cfg = _config(seed)
        a = run_soak(cfg)
        b = run_soak(cfg)
        assert a.event_log() == b.event_log()
        assert a.event_log().encode() == b.event_log().encode()
        assert (a.arrived, a.completed, a.shed, a.replans) == (
            b.arrived,
            b.completed,
            b.shed,
            b.replans,
        )

    def test_different_seed_different_stream(self):
        a = run_soak(_config(1))
        b = run_soak(_config(2))
        assert a.event_log() != b.event_log()

    def test_log_has_no_wall_clock(self):
        """Every canonical line is t=<sim-time> — no wall-clock leaks in."""
        report = run_soak(_config(3))
        for line in report.log:
            assert line.startswith("t=")
            assert "seconds" not in line

    def test_accounting_balances(self):
        report = run_soak(_config(4))
        assert report.arrived == report.completed + report.shed + report.inflight
        assert 0.0 <= report.completion_rate <= 1.0

    def test_churn_free_run_completes_everything(self):
        report = run_soak(
            SoakConfig(duration=90.0, arrival="arrival:rate=0.05", faults=None, seed=5)
        )
        assert report.shed == 0
        assert report.replans == 0
        assert report.completed + report.inflight == report.arrived
