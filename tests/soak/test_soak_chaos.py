"""Chaos-tier soak tests: targeted churn landing at the worst moments.

These drive the soak runner's event handlers directly so the fault can be
aimed exactly — at a machine the in-flight plan depends on, or at the link
a just-repaired plan routes over — rather than hoping a random timeline
lands one there.
"""

import pytest

from repro.grid.simulator import GridEvent
from repro.grid.workflow_domain import RunProgram, Transfer
from repro.obs import MetricsRegistry, Tracer
from repro.soak import SoakConfig, SoakRunner, run_soak
from repro.soak.arrivals import ArrivalStream

pytestmark = pytest.mark.chaos


def _runner(seed=3, **overrides):
    cfg = SoakConfig(
        duration=600.0, arrival="arrival:rate=1.0,n=1", seed=seed, **overrides
    )
    runner = SoakRunner(cfg, tracer=Tracer([]), metrics=MetricsRegistry())
    # The handlers' mutable run state, normally set up by run().
    runner._log = []
    runner._inflight = {}
    runner._completed = 0
    runner._shed = 0
    runner._latencies = []
    return runner


def _admit_one(runner, pushed):
    (req,) = ArrivalStream(runner.config.arrival, seed=runner.config.seed).requests(
        runner.ontology, runner.config.duration
    )
    runner._on_arrival(req, req.at, lambda at, prio, p: pushed.append((at, prio, p)))
    assert req.request_id in runner._inflight, "scenario needs an admitted request"
    return runner._inflight[req.request_id]


def _machines_touched(flight, now):
    touched = set()
    for aid in flight.pending_ids(now):
        op = flight.graph.activity(aid).op
        if isinstance(op, RunProgram):
            touched.add(op.machine)
        elif isinstance(op, Transfer):
            touched.update((op.src, op.dst))
    return touched


class TestCrashDuringRepair:
    def test_machine_crash_mid_flight_forces_replan(self):
        """Crash a machine the pending plan depends on: the repair rung must
        produce a plan that avoids the dead machine, or shed cleanly."""
        runner = _runner(seed=3)
        pushed = []
        flight = _admit_one(runner, pushed)
        mid = (flight.segment_start + flight.completion) / 2.0
        victim = sorted(_machines_touched(flight, mid))[0]
        ev = GridEvent(time=mid, kind="fail", machine=victim)
        runner._on_fault(ev, mid, lambda at, prio, p: pushed.append((at, prio, p)))
        assert not runner.ontology.topology.machines[victim].up
        rid = flight.request.request_id
        if rid in runner._inflight:
            # Replanned: the new schedule must not touch the dead machine.
            new_flight = runner._inflight[rid]
            assert new_flight.replans == 1
            assert victim not in _machines_touched(new_flight, mid)
        else:
            assert runner._shed + runner._completed == 1
        assert runner.metrics.counter("soak_replans").value >= 1

    def test_crash_during_repair_of_earlier_crash(self):
        """A second crash landing while the first is being repaired: every
        round must leave the loop consistent (no orphaned completions)."""
        runner = _runner(seed=7, max_replans=4)
        pushed = []
        flight = _admit_one(runner, pushed)
        rid = flight.request.request_id
        now = (flight.segment_start + flight.completion) / 2.0
        push = lambda at, prio, p: pushed.append((at, prio, p))
        for _round in range(3):
            if rid not in runner._inflight:
                break
            current = runner._inflight[rid]
            touched = _machines_touched(current, now)
            if not touched:
                break
            victim = sorted(touched)[0]
            runner._on_fault(GridEvent(time=now, kind="fail", machine=victim), now, push)
            now += 1.0
        # Either still in flight with a consistent epoch, or resolved exactly once.
        if rid in runner._inflight:
            final = runner._inflight[rid]
            completions = [p for _at, prio, p in pushed if prio == 0]
            assert (rid, final.epoch) in completions
        else:
            assert runner._completed + runner._shed == 1


class TestPartitionMidReplan:
    def test_partition_lands_between_replans(self):
        """Partition the route of the *replanned* schedule: the second
        replan round must classify it and recover or shed — never wedge."""
        runner = _runner(seed=11, max_replans=4)
        pushed = []
        flight = _admit_one(runner, pushed)
        rid = flight.request.request_id
        now = (flight.segment_start + flight.completion) / 2.0
        push = lambda at, prio, p: pushed.append((at, prio, p))
        victim = sorted(_machines_touched(flight, now))[0]
        runner._on_fault(GridEvent(time=now, kind="fail", machine=victim), now, push)
        if rid not in runner._inflight:
            assert runner._completed + runner._shed == 1
            return
        # Now partition a site pair the repaired plan transfers across.
        replanned = runner._inflight[rid]
        machines = runner.ontology.topology.machines
        cross = [
            (machines[op.src].site, machines[op.dst].site)
            for aid in replanned.pending_ids(now)
            for op in [replanned.graph.activity(aid).op]
            if isinstance(op, Transfer) and machines[op.src].site != machines[op.dst].site
        ]
        if not cross:
            pytest.skip("repaired plan stays within one site")
        site_a, site_b = cross[0]
        runner._on_fault(
            GridEvent(time=now + 1.0, kind="partition", machine=site_a, peer=site_b),
            now + 1.0,
            push,
        )
        if rid in runner._inflight:
            assert runner._inflight[rid].replans >= 2
        else:
            assert runner._completed + runner._shed == 1

    def test_full_soak_under_partition_storm_stays_consistent(self):
        """End-to-end: heavy partition + crash churn never wedges the loop
        and the books always balance."""
        report = run_soak(
            SoakConfig(
                duration=150.0,
                arrival="arrival:rate=0.1",
                faults="machine-crash:p=0.8,restore=40;partition:p=0.6",
                seed=13,
                max_replans=3,
            ),
            tracer=Tracer([]),
            metrics=MetricsRegistry(),
        )
        assert report.arrived == report.completed + report.shed + report.inflight
        assert report.arrived > 0
