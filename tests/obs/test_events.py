"""Event schema tests: dict round-trips and wire stability."""

import pytest

from repro.core import GAConfig, GARun, make_rng
from repro.core.stats import GenerationStats
from repro.obs import (
    EVENT_KINDS,
    CheckpointRecovered,
    CheckpointWrite,
    DecodeCacheSnapshot,
    EvaluationBatch,
    EvaluatorDegraded,
    FaultInjected,
    GenerationComplete,
    IncumbentImproved,
    IslandMigration,
    IslandVelocity,
    PhaseEnd,
    PhaseStart,
    PortfolioCancelled,
    PortfolioMigration,
    ReplanLatency,
    ReplanTriggered,
    RequestArrived,
    RequestCompleted,
    RequestShed,
    RetryAttempt,
    SchedulerGeneration,
    ServiceAdmitted,
    ServiceCompleted,
    ServiceShed,
    ServiceSlice,
    SimulationComplete,
    SweepProgress,
    TrialFinished,
    TrialStarted,
    event_from_dict,
)

SAMPLES = [
    GenerationComplete(
        scope="phase-1", generation=3, best_total=0.8, mean_total=0.4,
        best_goal=0.9, mean_goal=0.5, mean_length=12.5, solved_count=2,
    ),
    PhaseStart(scope="phase-2", phase=2),
    PhaseEnd(scope="phase-2", phase=2, generations=100, plan_length=31, goal_fitness=1.0, solved=True),
    IslandMigration(generation=9, migration=1, n_islands=4, migrants_per_island=2),
    IslandVelocity(
        round_index=3, island=1, strategy="ga:state-aware", velocity=0.02,
        best_total=0.71, stagnation=0,
    ),
    PortfolioMigration(round_index=3, source=0, dest=1, migrants=3, reason="boost"),
    PortfolioCancelled(winner=2, strategy="search:gbfs", tick=4, cancelled=2),
    IncumbentImproved(
        island=2, strategy="search:gbfs", tick=4, goal_fitness=1.0,
        cost_fitness=0.05, plan_length=31, solved=True,
    ),
    EvaluationBatch(n_evaluated=200, seconds=0.5, mode="process", chunks=13, cache_hits=10, cache_misses=3),
    DecodeCacheSnapshot(hits=100, misses=25),
    CheckpointWrite(path="/tmp/c.pkl", generation=50),
    CheckpointRecovered(path="/tmp/c.pkl", generation=40, skipped=2),
    FaultInjected(scope="sim", at=7.5, fault="link-degrade", target="lab--campus", value=4.0),
    RetryAttempt(scope="b", component="broker", attempt=2, backoff_s=1.0, reason="refused"),
    EvaluatorDegraded(failures=2, reason="2 consecutive batches failed"),
    ReplanTriggered(scope="coordination", round_index=1, at=14.2, completed=3, reason="abort"),
    SchedulerGeneration(scope="scheduler", generation=7, best_makespan=120.5, mean_objective=150.0),
    SimulationComplete(makespan=42.0, tasks_done=10, tasks_failed=0, success=True, seconds=0.01),
    TrialStarted(scope="table2-hanoi", experiment="table2-hanoi", trial_id="disks=5#t0", seed=17),
    TrialFinished(
        scope="table2-hanoi", experiment="table2-hanoi", trial_id="disks=5#t0",
        seed=17, status="ok", seconds=0.8, attempt=2,
    ),
    SweepProgress(scope="table2-hanoi", experiment="table2-hanoi", done=3, failed=1, total=30),
    RequestArrived(scope="soak", request_id=4, at=12.5, plan_length=6, estimate=58.0),
    RequestCompleted(
        scope="soak", request_id=4, at=60.2, duration=47.7, replans=1, deadline_met=True,
    ),
    RequestShed(scope="soak", request_id=5, at=33.0, reason="deadline", replans=2),
    ReplanLatency(
        scope="soak", request_id=4, at=40.0, rung="repair",
        reused=4, repaired=2, plan_length=6, seconds=0.004,
    ),
    ServiceAdmitted(
        scope="service", request_id=1, tenant="alpha", domain_hash="ab12cd34ef56ab12",
        queue_depth=3,
    ),
    ServiceShed(
        scope="service", request_id=2, tenant="bravo", reason="queue-full", queue_depth=8,
    ),
    ServiceSlice(
        scope="service", request_id=1, tenant="alpha", slice_index=2, generations=5,
        done=False,
    ),
    ServiceCompleted(
        scope="service", request_id=1, tenant="alpha", solved=True, timed_out=False,
        generations=15, plan_length=7, slices=3, seconds=0.21,
    ),
]


class TestEventRoundTrip:
    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
    def test_dict_round_trip(self, event):
        record = event.to_dict()
        assert record["kind"] == event.kind
        assert event_from_dict(record) == event

    def test_every_kind_registered(self):
        assert {e.kind for e in SAMPLES} == set(EVENT_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "nope"})

    def test_unknown_payload_keys_ignored(self):
        record = PhaseStart(phase=1).to_dict()
        record["future_field"] = 123
        assert event_from_dict(record) == PhaseStart(phase=1)

    def test_hit_rate(self):
        assert DecodeCacheSnapshot(hits=3, misses=1).hit_rate == pytest.approx(0.75)
        assert DecodeCacheSnapshot(hits=0, misses=0).hit_rate == 0.0


class TestFromStats:
    def test_matches_generation_stats(self, hanoi3):
        cfg = GAConfig(population_size=10, generations=2, max_len=35, init_length=7)
        run = GARun(hanoi3, cfg, make_rng(0))
        stats: GenerationStats = run.step()
        event = GenerationComplete.from_stats(stats, scope="s")
        assert event.generation == stats.generation
        assert event.best_total == stats.best_total
        assert event.solved_count == stats.solved_count
        assert event.scope == "s"
