"""Tests for the JSONL generation logger."""

import io
import json

import pytest

from repro.core import GAConfig, GARun, make_rng
from repro.obs import GenerationLogger, read_log


class TestGenerationLogger:
    def test_logs_one_record_per_generation(self, tmp_path, hanoi3):
        path = tmp_path / "trace.jsonl"
        cfg = GAConfig(
            population_size=10, generations=5, max_len=35, init_length=7,
            stop_on_goal=False,
        )
        with GenerationLogger(path, run_id="t1") as logger:
            GARun(hanoi3, cfg, make_rng(0)).run(on_generation=logger)
        records = read_log(path)
        assert len(records) == 5
        assert [r["generation"] for r in records] == [0, 1, 2, 3, 4]
        assert all(r["run"] == "t1" for r in records)
        assert all(0.0 <= r["best_goal"] <= 1.0 for r in records)

    def test_never_stops_the_run(self, tmp_path, hanoi3):
        cfg = GAConfig(
            population_size=10, generations=4, max_len=35, init_length=7,
            stop_on_goal=False,
        )
        with GenerationLogger(tmp_path / "t.jsonl") as logger:
            result = GARun(hanoi3, cfg, make_rng(1)).run(on_generation=logger)
        assert result.generations_run == 4

    def test_appends_across_runs(self, tmp_path, hanoi3):
        path = tmp_path / "multi.jsonl"
        cfg = GAConfig(
            population_size=10, generations=2, max_len=35, init_length=7,
            stop_on_goal=False,
        )
        for run_id in ("a", "b"):
            with GenerationLogger(path, run_id=run_id) as logger:
                GARun(hanoi3, cfg, make_rng(2)).run(on_generation=logger)
        assert len(read_log(path)) == 4
        assert len(read_log(path, run_id="a")) == 2

    def test_stream_target(self, hanoi3):
        buf = io.StringIO()
        cfg = GAConfig(
            population_size=10, generations=2, max_len=35, init_length=7,
            stop_on_goal=False,
        )
        logger = GenerationLogger(buf, run_id="s")
        GARun(hanoi3, cfg, make_rng(3)).run(on_generation=logger)
        logger.close()
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert len(lines) == 2

    def test_creates_parent_dirs(self, tmp_path):
        logger = GenerationLogger(tmp_path / "x" / "y" / "t.jsonl")
        logger.close()
        assert (tmp_path / "x" / "y" / "t.jsonl").exists()

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            GenerationLogger(tmp_path / "t.jsonl", flush_every=0)

    def test_read_log_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"run": "x", "generation": 0}\n\n{"run": "x", "generation": 1}\n')
        assert len(read_log(path)) == 2


class TestDeprecatedShim:
    def test_core_runlog_warns_and_reexports(self):
        import importlib
        import sys

        sys.modules.pop("repro.core.runlog", None)
        with pytest.warns(DeprecationWarning, match="repro.obs"):
            legacy = importlib.import_module("repro.core.runlog")
        assert legacy.GenerationLogger is GenerationLogger
        assert legacy.read_log is read_log

    def test_dropped_from_core_public_api(self):
        import repro.core

        assert "GenerationLogger" not in repro.core.__all__
        assert not hasattr(repro.core, "read_log")
