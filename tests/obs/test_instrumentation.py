"""Integration tests: the planner stack reporting through repro.obs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EvaluationContext,
    FitnessFunction,
    GAConfig,
    GARun,
    Individual,
    IslandConfig,
    MultiPhaseConfig,
    ProcessPoolEvaluator,
    SerialEvaluator,
    make_rng,
    run_islands,
    run_multiphase,
)
from repro.core.checkpoint import load_checkpoint, restore_run, save_checkpoint
from repro.obs import MemoryRecorder, MetricsRegistry, Tracer, observe
from repro.scheduling import ETCParams, GASchedulerConfig, ga_schedule, generate_etc


def _cfg(**overrides):
    base = dict(
        population_size=10, generations=4, max_len=35, init_length=7, stop_on_goal=False
    )
    base.update(overrides)
    return GAConfig(**base)


@pytest.fixture
def recorder():
    return MemoryRecorder()


@pytest.fixture
def tracer(recorder):
    return Tracer([recorder])


class TestGARunInstrumentation:
    def test_generation_events_per_generation(self, hanoi3, tracer, recorder):
        GARun(hanoi3, _cfg(), make_rng(0), tracer=tracer).run()
        gens = recorder.of_kind("generation")
        assert [e.generation for e in gens] == [0, 1, 2, 3]

    def test_evaluation_batches_and_cache_snapshot(self, hanoi3, tracer, recorder):
        # vector_decode=False exercises the object decode engine, whose
        # decode cache backs the end-of-run snapshot event.
        GARun(hanoi3, _cfg(vector_decode=False), make_rng(0), tracer=tracer).run()
        batches = recorder.of_kind("evaluation-batch")
        # One batch per generation with pending work; untouched copies keep
        # their fitness, so later generations may evaluate fewer than pop.
        assert 1 <= len(batches) <= 4
        assert all(b.mode == "serial" for b in batches)
        assert all(b.n_evaluated > 0 for b in batches)
        assert 10 <= sum(b.n_evaluated for b in batches) <= 40
        snapshots = recorder.of_kind("decode-cache")
        assert len(snapshots) == 1
        assert snapshots[0].hits + snapshots[0].misses > 0

    def test_vector_path_batches_without_cache_snapshot(self, hanoi3, tracer, recorder):
        # Hanoi has a kernel, so the default run takes the vectorised decode
        # path: batches still stream, but there is no decode cache to snapshot.
        GARun(hanoi3, _cfg(), make_rng(0), tracer=tracer).run()
        batches = recorder.of_kind("evaluation-batch")
        assert 1 <= len(batches) <= 4
        assert all(b.mode == "serial" for b in batches)
        assert all(b.n_evaluated > 0 for b in batches)
        assert recorder.of_kind("decode-cache") == []

    def test_metrics_timers_and_counters(self, hanoi3):
        metrics = MetricsRegistry()
        GARun(hanoi3, _cfg(vector_decode=False), make_rng(1), metrics=metrics).run()
        assert 10 <= metrics.counters["evals"].value <= 40
        for name in ("eval_batch", "decode", "fitness", "selection", "variation"):
            assert metrics.timers[name].count > 0, name
        hit = metrics.counters["decode_cache_hits"].value
        miss = metrics.counters["decode_cache_misses"].value
        assert hit + miss > 0

    def test_vector_path_metrics(self, hanoi3):
        metrics = MetricsRegistry()
        GARun(hanoi3, _cfg(), make_rng(1), metrics=metrics).run()
        assert 10 <= metrics.counters["evals"].value <= 40
        for name in ("eval_batch", "decode", "selection", "variation"):
            assert metrics.timers[name].count > 0, name
        assert metrics.counters["vector_rows"].value == metrics.counters["evals"].value
        assert metrics.counters["vector_genes"].value > 0

    def test_uninstrumented_run_emits_nothing(self, hanoi3, recorder):
        GARun(hanoi3, _cfg(), make_rng(2)).run()
        assert len(recorder) == 0

    def test_ambient_observe_context(self, hanoi3, recorder):
        metrics = MetricsRegistry()
        with observe(tracer=Tracer([recorder]), metrics=metrics):
            GARun(hanoi3, _cfg(), make_rng(3)).run()
        assert recorder.of_kind("generation")
        assert metrics.counters["evals"].value >= 10
        # The pair is popped on exit: a new run is silent again.
        before = len(recorder)
        GARun(hanoi3, _cfg(), make_rng(4)).run()
        assert len(recorder) == before


class TestDriverInstrumentation:
    def test_multiphase_phase_events(self, hanoi3, tracer, recorder):
        mp = MultiPhaseConfig(max_phases=3, phase=_cfg())
        result = run_multiphase(hanoi3, mp, make_rng(0), tracer=tracer)
        starts = recorder.of_kind("phase-start")
        ends = recorder.of_kind("phase-end")
        assert [e.phase for e in starts] == list(range(1, result.n_phases + 1))
        assert len(ends) == result.n_phases
        assert ends[0].generations == 4
        # Generation events are scoped per phase.
        scopes = {e.scope for e in recorder.of_kind("generation")}
        assert scopes == {f"phase-{i}" for i in range(1, result.n_phases + 1)}

    def test_island_migration_events(self, hanoi3, tracer, recorder):
        cfg = IslandConfig(
            n_islands=3, migration_interval=2, migration_size=1,
            island=_cfg(generations=6),
        )
        result = run_islands(hanoi3, cfg, make_rng(0), tracer=tracer)
        migrations = recorder.of_kind("island-migration")
        assert len(migrations) == result.migrations == 3
        assert all(m.n_islands == 3 and m.migrants_per_island == 1 for m in migrations)
        scopes = {e.scope for e in recorder.of_kind("generation")}
        assert scopes == {"island-0", "island-1", "island-2"}

    def test_scheduler_generation_events(self, tracer, recorder):
        etc = generate_etc(ETCParams(n_tasks=16, n_machines=4), make_rng(0))
        metrics = MetricsRegistry()
        ga_schedule(etc, GASchedulerConfig(generations=5, population_size=20),
                    make_rng(1), tracer=tracer, metrics=metrics)
        events = recorder.of_kind("scheduler-generation")
        assert [e.generation for e in events] == list(range(5))
        assert all(e.best_makespan > 0 for e in events)
        assert metrics.counters["sched_evals"].value == 100

    def test_simulator_events(self, tracer):
        from repro.grid import GridSimulator, imaging_pipeline, plan_to_activity_graph
        from repro.planning.search import goal_gap, greedy_best_first

        recorder = tracer.sinks[0]
        onto, domain = imaging_pipeline()
        r = greedy_best_first(domain, goal_gap(domain, scale=100.0), max_expansions=100_000)
        graph = plan_to_activity_graph(domain, r.plan)
        metrics = MetricsRegistry()
        result = GridSimulator(onto, tracer=tracer, metrics=metrics).execute(
            graph, domain.initial_state
        )
        events = recorder.of_kind("sim-complete")
        assert len(events) == 1
        assert events[0].success == result.success
        assert events[0].makespan == pytest.approx(result.makespan)
        assert metrics.counters["sim_tasks_done"].value == len(result.completed)


class TestCheckpointObservability:
    def test_checkpoint_write_event(self, hanoi3, tmp_path, tracer, recorder):
        run = GARun(hanoi3, _cfg(), make_rng(5), tracer=tracer)
        run.step()
        save_checkpoint(run, tmp_path / "c.pkl")
        events = recorder.of_kind("checkpoint")
        assert len(events) == 1
        assert events[0].generation == run.generation

    def test_resume_does_not_double_count_generations(self, hanoi3, tmp_path, tracer, recorder):
        cfg = _cfg(generations=6)
        run = GARun(hanoi3, cfg, make_rng(6), tracer=tracer)
        for _ in range(3):
            run.step()
        save_checkpoint(run, tmp_path / "c.pkl")
        evals_before = len(recorder.of_kind("evaluation-batch"))

        resumed = GARun(hanoi3, cfg, make_rng(0), tracer=tracer)
        restore_run(resumed, load_checkpoint(tmp_path / "c.pkl"))
        # Restoring re-evaluates the best individual as bookkeeping; that
        # must not show up in the trace.
        assert len(recorder.of_kind("evaluation-batch")) == evals_before
        for _ in range(3):
            resumed.step()
        generations = [e.generation for e in recorder.of_kind("generation")]
        assert generations == [0, 1, 2, 3, 4, 5]
        assert len(set(generations)) == len(generations)

    def test_restore_rebinds_observability(self, hanoi3, tmp_path, tracer, recorder):
        run = GARun(hanoi3, _cfg(), make_rng(7), tracer=tracer)
        run.step()
        save_checkpoint(run, tmp_path / "c.pkl")
        resumed = GARun(hanoi3, _cfg(), make_rng(0), tracer=tracer)
        restore_run(resumed, load_checkpoint(tmp_path / "c.pkl"))
        before = len(recorder.of_kind("evaluation-batch"))
        resumed.step()
        assert len(recorder.of_kind("evaluation-batch")) == before + 1


class TestSerialVsProcessEquivalence:
    """Serial and process-pool evaluation must report the same aggregates."""

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_aggregate_metrics_equivalent(self, seed):
        from repro.domains import HanoiDomain

        domain = HanoiDomain(3)
        rng = make_rng(seed)
        population = [Individual.random(int(rng.integers(1, 20)), rng) for _ in range(12)]
        context = EvaluationContext(domain, domain.initial_state, FitnessFunction(domain))

        serial_metrics = MetricsRegistry()
        serial = SerialEvaluator()
        serial.bind_observability(Tracer([MemoryRecorder()]), serial_metrics)
        serial.evaluate([ind.copy() for ind in population], context)

        pool_metrics = MetricsRegistry()
        pool_recorder = MemoryRecorder()
        with ProcessPoolEvaluator(processes=2, chunk_size=4) as pool:
            pool.bind_observability(Tracer([pool_recorder]), pool_metrics)
            pool.evaluate([ind.copy() for ind in population], context)

        assert serial_metrics.counters["evals"].value == pool_metrics.counters["evals"].value
        # Decode work is identical, so total cache traffic (hits + misses)
        # matches; the split may differ because workers hold separate caches.
        serial_traffic = (
            serial_metrics.counters["decode_cache_hits"].value
            + serial_metrics.counters["decode_cache_misses"].value
        )
        pool_traffic = (
            pool_metrics.counters["decode_cache_hits"].value
            + pool_metrics.counters["decode_cache_misses"].value
        )
        assert serial_traffic == pool_traffic
        batches = pool_recorder.of_kind("evaluation-batch")
        assert len(batches) == 1
        assert batches[0].mode == "process"
        assert batches[0].n_evaluated == len(population)
        assert batches[0].chunks == 3
