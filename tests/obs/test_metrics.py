"""Metrics registry tests."""

import time

import pytest

from repro.obs import MetricsRegistry, planner_summary


class TestInstruments:
    def test_counter_accumulates(self):
        m = MetricsRegistry()
        m.counter("x").add()
        m.counter("x").add(4)
        assert m.counters["x"].value == 5
        assert m.counter("x") is m.counters["x"]  # created once

    def test_timer_record_and_stats(self):
        m = MetricsRegistry()
        t = m.timer("t")
        t.record(0.2)
        t.record(0.1, count=3)
        assert t.count == 4
        assert t.total == pytest.approx(0.3)
        assert t.min == pytest.approx(0.1)
        assert t.max == pytest.approx(0.2)
        assert t.mean == pytest.approx(0.075)

    def test_timer_context_manager(self):
        m = MetricsRegistry()
        with m.timer("t").time():
            time.sleep(0.01)
        assert m.timers["t"].count == 1
        assert m.timers["t"].total >= 0.005

    def test_histogram(self):
        m = MetricsRegistry()
        h = m.histogram("h")
        for v in (1.0, 3.0, 2.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0 and h.max == 4.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0

    def test_histogram_sample_bounded(self):
        m = MetricsRegistry()
        h = m.histogram("h", sample_size=8)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        assert len(h._sample) == 8


class TestSummary:
    def test_summary_shape(self):
        m = MetricsRegistry()
        m.counter("c").add(2)
        m.timer("t").record(0.5)
        m.histogram("h").observe(1.0)
        s = m.summary()
        assert s["counters"] == {"c": 2}
        assert s["timers"]["t"]["count"] == 1
        assert s["histograms"]["h"]["mean"] == 1.0

    def test_planner_summary_derivations(self):
        m = MetricsRegistry()
        m.counter("evals").add(500)
        m.timer("eval_batch").record(2.0)
        m.counter("decode_cache_hits").add(90)
        m.counter("decode_cache_misses").add(10)
        derived = planner_summary(m)
        assert derived["evals_per_sec"] == pytest.approx(250.0)
        assert derived["decode_cache_hit_rate"] == pytest.approx(0.9)

    def test_planner_summary_empty_cases(self):
        assert planner_summary(None) == {}
        assert planner_summary(MetricsRegistry()) == {}

    def test_render_mentions_headlines(self):
        m = MetricsRegistry()
        m.counter("evals").add(100)
        m.timer("eval_batch").record(1.0)
        m.counter("decode_cache_hits").add(1)
        m.counter("decode_cache_misses").add(1)
        text = m.render()
        assert "evals_per_sec" in text
        assert "decode_cache_hit_rate" in text
