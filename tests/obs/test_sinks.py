"""Sink tests: JSONL parse-back, CSV column stability, recorder ordering."""

import csv
import io
import json

import pytest

from repro.obs import (
    CSV_COLUMNS,
    CsvSummarySink,
    GenerationComplete,
    JsonlSink,
    MemoryRecorder,
    PhaseStart,
    ProgressSink,
    Tracer,
    read_trace,
)


def _gen_event(generation, scope="", solved=0):
    return GenerationComplete(
        scope=scope, generation=generation, best_total=0.5, mean_total=0.25,
        best_goal=0.6, mean_goal=0.3, mean_length=10.0, solved_count=solved,
    )


class TestJsonlSink:
    def test_lines_parse_back_to_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [PhaseStart(scope="phase-1", phase=1), _gen_event(0, scope="phase-1")]
        with Tracer([JsonlSink(path)]) as tracer:
            for event in events:
                tracer.emit(event)
        assert read_trace(path) == events

    def test_kind_filter(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer([JsonlSink(path)]) as tracer:
            tracer.emit(PhaseStart(phase=1))
            tracer.emit(_gen_event(0))
            tracer.emit(_gen_event(1))
        assert len(read_trace(path, kind="generation")) == 2

    def test_appends_and_creates_parents(self, tmp_path):
        path = tmp_path / "a" / "b" / "trace.jsonl"
        for _ in range(2):
            with Tracer([JsonlSink(path)]) as tracer:
                tracer.emit(PhaseStart(phase=1))
        assert len(read_trace(path)) == 2

    def test_stream_target_left_open(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.write(PhaseStart(phase=1))
        sink.close()
        assert not buf.closed
        assert json.loads(buf.getvalue())["kind"] == "phase-start"

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "t.jsonl", flush_every=0)


class TestCsvSummarySink:
    def test_columns_stable(self, tmp_path):
        path = tmp_path / "summary.csv"
        sink = CsvSummarySink(path)
        sink.write(_gen_event(0, scope="x"))
        sink.write(PhaseStart(phase=1))  # ignored: not a generation event
        sink.write(_gen_event(1, scope="x", solved=3))
        sink.close()
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == list(CSV_COLUMNS)
        assert len(rows) == 3  # header + 2 generation rows
        assert rows[1][0] == "x"
        assert [r[1] for r in rows[1:]] == ["0", "1"]
        assert rows[2][-1] == "3"


class TestMemoryRecorder:
    def test_preserves_emission_order(self):
        recorder = MemoryRecorder()
        events = [PhaseStart(phase=1), _gen_event(0), _gen_event(1), PhaseStart(phase=2)]
        for event in events:
            recorder.write(event)
        assert recorder.events == events
        assert recorder.of_kind("generation") == events[1:3]
        assert len(recorder) == 4

    def test_capacity_drops_oldest(self):
        recorder = MemoryRecorder(capacity=2)
        for g in range(5):
            recorder.write(_gen_event(g))
        assert [e.generation for e in recorder.events] == [3, 4]
        assert recorder.total_written == 5

    def test_clear(self):
        recorder = MemoryRecorder()
        recorder.write(_gen_event(0))
        recorder.clear()
        assert len(recorder) == 0 and recorder.total_written == 0


class TestProgressSink:
    def test_writes_generation_and_phase_lines(self):
        buf = io.StringIO()
        sink = ProgressSink(buf)
        sink.write(PhaseStart(scope="phase-1", phase=1))
        sink.write(_gen_event(0, scope="phase-1"))
        out = buf.getvalue()
        assert "phase 1" in out
        assert "gen    0" in out

    def test_throttles_generations_but_keeps_solutions(self):
        buf = io.StringIO()
        sink = ProgressSink(buf, every=10)
        for g in range(20):
            sink.write(_gen_event(g, solved=1 if g == 5 else 0))
        lines = buf.getvalue().splitlines()
        assert len(lines) == 3  # generations 0, 10 and the solved gen 5
        assert any("solved 1" in line for line in lines)

    def test_every_validated(self):
        with pytest.raises(ValueError):
            ProgressSink(io.StringIO(), every=0)
