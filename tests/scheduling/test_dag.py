"""Tests for the HEFT DAG scheduler and the random workflow generator."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.core import make_rng
from repro.scheduling import DagProblem, DagSchedule, heft, random_layered_dag


def _chain_problem(costs):
    """Linear chain t0 -> t1 -> ... with given per-machine cost dicts."""
    g = nx.DiGraph()
    n = len(costs)
    g.add_nodes_from(range(n))
    g.add_edges_from((i, i + 1) for i in range(n - 1))
    machines = tuple(sorted({m for c in costs for m in c}))
    return DagProblem(graph=g, compute=dict(enumerate(costs)), comm={}, machines=machines)


class TestDagProblem:
    def test_cycle_rejected(self):
        g = nx.DiGraph([(0, 1), (1, 0)])
        with pytest.raises(ValueError, match="DAG"):
            DagProblem(graph=g, compute={0: {"m": 1}, 1: {"m": 1}}, comm={}, machines=("m",))

    def test_missing_costs_rejected(self):
        g = nx.DiGraph()
        g.add_node(0)
        with pytest.raises(ValueError, match="no compute costs"):
            DagProblem(graph=g, compute={}, comm={}, machines=("m",))
        with pytest.raises(ValueError, match="missing costs"):
            DagProblem(graph=g, compute={0: {}}, comm={}, machines=("m",))


class TestHeft:
    def test_chain_picks_fastest_machine(self):
        p = _chain_problem([{"slow": 10.0, "fast": 1.0}] * 3)
        s = heft(p)
        assert all(m == "fast" for m in s.assignment.values())
        assert s.makespan == pytest.approx(3.0)

    def test_respects_dependencies(self):
        rng = make_rng(0)
        g = random_layered_dag(15, 5, rng)
        machines = ("a", "b")
        compute = {t: {m: float(rng.uniform(1, 5)) for m in machines} for t in g.nodes}
        comm = {e: float(rng.uniform(0, 1)) for e in g.edges}
        s = heft(DagProblem(graph=g, compute=compute, comm=comm, machines=machines))
        for u, v in g.edges:
            gap = comm[(u, v)] if s.assignment[u] != s.assignment[v] else 0.0
            assert s.start[v] >= s.finish[u] + gap - 1e-9

    def test_no_machine_overlap(self):
        rng = make_rng(1)
        g = random_layered_dag(20, 4, rng)
        machines = ("a", "b", "c")
        compute = {t: {m: float(rng.uniform(1, 5)) for m in machines} for t in g.nodes}
        s = heft(DagProblem(graph=g, compute=compute, comm={}, machines=machines))
        for m in machines:
            tasks = sorted(
                (t for t, mm in s.assignment.items() if mm == m),
                key=lambda t: s.start[t],
            )
            for t1, t2 in zip(tasks, tasks[1:]):
                assert s.start[t2] >= s.finish[t1] - 1e-9

    def test_infinite_cost_machines_avoided(self):
        p = _chain_problem([{"a": math.inf, "b": 2.0}, {"a": 1.0, "b": 2.0}])
        s = heft(p)
        assert s.assignment[0] == "b"

    def test_unschedulable_task_raises(self):
        p = _chain_problem([{"a": math.inf}])
        with pytest.raises(ValueError, match="no machine"):
            heft(p)

    def test_parallel_tasks_spread_over_machines(self):
        # Two independent equal tasks and two equal machines: HEFT should
        # use both rather than queueing on one.
        g = nx.DiGraph()
        g.add_nodes_from([0, 1])
        p = DagProblem(
            graph=g,
            compute={0: {"a": 5.0, "b": 5.0}, 1: {"a": 5.0, "b": 5.0}},
            comm={},
            machines=("a", "b"),
        )
        s = heft(p)
        assert {s.assignment[0], s.assignment[1]} == {"a", "b"}
        assert s.makespan == pytest.approx(5.0)

    def test_beats_single_machine_baseline(self):
        rng = make_rng(2)
        g = random_layered_dag(24, 4, rng)
        machines = ("a", "b", "c", "d")
        compute = {t: {m: float(rng.uniform(1, 8)) for m in machines} for t in g.nodes}
        s = heft(DagProblem(graph=g, compute=compute, comm={}, machines=machines))
        single = sum(compute[t]["a"] for t in g.nodes)
        assert s.makespan < single


class TestRandomLayeredDag:
    def test_structure(self):
        rng = make_rng(3)
        g = random_layered_dag(20, 5, rng)
        assert g.number_of_nodes() == 20
        assert nx.is_directed_acyclic_graph(g)

    def test_every_later_task_has_predecessor(self):
        rng = make_rng(4)
        g = random_layered_dag(18, 6, rng, edge_probability=0.1)
        first_layer = {t for t in g.nodes if t % 6 == 0}
        for t in g.nodes:
            if t not in first_layer:
                assert g.in_degree(t) >= 1

    def test_validation(self):
        rng = make_rng(5)
        with pytest.raises(ValueError):
            random_layered_dag(2, 5, rng)
        with pytest.raises(ValueError):
            random_layered_dag(10, 2, rng, edge_probability=1.5)


class TestGridBridge:
    def test_activity_graph_schedules(self):
        from repro.grid import imaging_pipeline, plan_to_activity_graph
        from repro.grid.activity_graph import activity_graph_to_dag_problem
        from repro.planning.search import goal_gap, greedy_best_first

        onto, domain = imaging_pipeline()
        r = greedy_best_first(domain, goal_gap(domain, scale=100.0), max_expansions=100_000)
        ag = plan_to_activity_graph(domain, r.plan)
        problem = activity_graph_to_dag_problem(ag, onto)
        schedule = heft(problem)
        assert len(schedule.assignment) == len(ag)
        # Transfers stay pinned to their planned source machine.
        for act in ag.activities():
            if act.kind == "transfer":
                assert schedule.assignment[act.id] == act.op.src
        # Runs land only on hardware that satisfies the program.
        for act in ag.activities():
            if act.kind == "run":
                program = onto.programs[act.op.program]
                machine = onto.topology.machines[schedule.assignment[act.id]]
                assert program.machine_ok(machine)
