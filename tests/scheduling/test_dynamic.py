"""Tests for dynamic (on-line) task mapping."""

import numpy as np
import pytest

from repro.core import make_rng
from repro.scheduling import (
    BATCH_HEURISTICS,
    ETCParams,
    IMMEDIATE_HEURISTICS,
    TaskArrival,
    batch_mode,
    generate_etc,
    immediate_mode,
    poisson_arrivals,
)
from repro.scheduling.dynamic import _make_pick_kpb, _make_pick_sa


@pytest.fixture
def small_etc(rng):
    return generate_etc(ETCParams(n_tasks=40, n_machines=4), rng)


@pytest.fixture
def arrivals(small_etc, rng):
    return poisson_arrivals(small_etc.shape[0], rate=0.2, rng=rng)


class TestArrivals:
    def test_poisson_monotone_times(self, rng):
        arr = poisson_arrivals(50, rate=1.0, rng=rng)
        times = [a.time for a in arr]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_bad_rate(self, rng):
        with pytest.raises(ValueError):
            poisson_arrivals(5, rate=0, rng=rng)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            TaskArrival(task=0, time=-1.0)


class TestImmediateMode:
    def test_all_heuristics_produce_valid_schedules(self, small_etc, arrivals):
        for name in IMMEDIATE_HEURISTICS:
            r = immediate_mode(small_etc, arrivals, name)
            assert r.assignment.shape == (40,)
            assert (r.assignment >= 0).all() and (r.assignment < 4).all()
            # No task starts before it arrives.
            by_task = {a.task: a.time for a in arrivals}
            for t in range(40):
                assert r.start[t] >= by_task[t] - 1e-9
            # Completion = start + execution on the chosen machine.
            exec_times = small_etc[np.arange(40), r.assignment]
            assert np.allclose(r.completion, r.start + exec_times)

    def test_no_machine_overlap(self, small_etc, arrivals):
        r = immediate_mode(small_etc, arrivals, "MCT")
        for m in range(4):
            tasks = np.where(r.assignment == m)[0]
            intervals = sorted((r.start[t], r.completion[t]) for t in tasks)
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9

    def test_mct_beats_olb(self, small_etc, arrivals):
        mct = immediate_mode(small_etc, arrivals, "MCT")
        olb = immediate_mode(small_etc, arrivals, "OLB")
        assert mct.makespan <= olb.makespan

    def test_met_matches_argmin(self, small_etc, arrivals):
        r = immediate_mode(small_etc, arrivals, "MET")
        assert np.array_equal(r.assignment, small_etc.argmin(axis=1))

    def test_kpb_100_percent_is_mct(self, small_etc, arrivals):
        kpb = immediate_mode(small_etc, arrivals, _make_pick_kpb(100.0))
        mct = immediate_mode(small_etc, arrivals, "MCT")
        assert np.array_equal(kpb.assignment, mct.assignment)

    def test_kpb_validation(self):
        with pytest.raises(ValueError):
            _make_pick_kpb(0)
        with pytest.raises(ValueError):
            _make_pick_kpb(150)

    def test_sa_thresholds_validated(self):
        with pytest.raises(ValueError):
            _make_pick_sa(low=0.9, high=0.6)

    def test_arrival_coverage_validated(self, small_etc):
        with pytest.raises(ValueError, match="exactly once"):
            immediate_mode(small_etc, [TaskArrival(0, 0.0)])


class TestBatchMode:
    def test_all_heuristics_valid(self, small_etc, arrivals):
        for name in BATCH_HEURISTICS:
            r = batch_mode(small_etc, arrivals, interval=30.0, heuristic=name)
            assert r.assignment.shape == (40,)
            by_task = {a.task: a.time for a in arrivals}
            for t in range(40):
                assert r.start[t] >= by_task[t] - 1e-9

    def test_tasks_start_at_or_after_mapping_event(self, small_etc, arrivals):
        interval = 25.0
        r = batch_mode(small_etc, arrivals, interval=interval)
        by_task = {a.task: a.time for a in arrivals}
        for t in range(40):
            # The first mapping event at or after the arrival.
            import math

            event = math.ceil(by_task[t] / interval) * interval
            assert r.start[t] >= min(event, max(a.time for a in arrivals)) - 1e-6

    def test_interval_validated(self, small_etc, arrivals):
        with pytest.raises(ValueError):
            batch_mode(small_etc, arrivals, interval=0)

    def test_single_big_batch_matches_static_min_min_shape(self, rng):
        """All tasks arriving at t=0 in one batch behaves like static
        Min-min (same greedy rule, same ready-time bookkeeping)."""
        from repro.scheduling import makespan, min_min

        etc = generate_etc(ETCParams(n_tasks=30, n_machines=4), rng)
        arrivals = [TaskArrival(i, 0.0) for i in range(30)]
        batch = batch_mode(etc, arrivals, interval=1.0, heuristic="Min-min")
        static = makespan(etc, min_min(etc))
        assert batch.makespan == pytest.approx(static, rel=0.3)

    def test_no_machine_overlap(self, small_etc, arrivals):
        r = batch_mode(small_etc, arrivals, interval=40.0, heuristic="Sufferage")
        for m in range(4):
            tasks = np.where(r.assignment == m)[0]
            intervals = sorted((r.start[t], r.completion[t]) for t in tasks)
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9
