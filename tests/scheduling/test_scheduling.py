"""Tests for the ETC benchmark, mapping heuristics, metrics, GA mapper."""

import numpy as np
import pytest

from repro.core import make_rng
from repro.scheduling import (
    ETCParams,
    GASchedulerConfig,
    HEURISTICS,
    flowtime,
    ga_schedule,
    generate_etc,
    machine_loads,
    makespan,
    max_min,
    mct,
    met,
    min_min,
    olb,
    sufferage,
)


class TestETCGeneration:
    def test_shape_and_positivity(self, rng):
        etc = generate_etc(ETCParams(n_tasks=32, n_machines=4), rng)
        assert etc.shape == (32, 4)
        assert (etc > 0).all()

    def test_consistent_rows_sorted(self, rng):
        etc = generate_etc(
            ETCParams(n_tasks=64, n_machines=8, consistency="consistent"), rng
        )
        assert (np.diff(etc, axis=1) >= 0).all()

    def test_semi_consistent_even_columns_sorted(self, rng):
        etc = generate_etc(ETCParams(n_tasks=64, n_machines=8, consistency="semi"), rng)
        sub = etc[:, ::2]
        assert (np.diff(sub, axis=1) >= 0).all()
        # Full matrix not sorted (overwhelmingly likely at this size).
        assert not (np.diff(etc, axis=1) >= 0).all()

    def test_inconsistent_not_sorted(self, rng):
        etc = generate_etc(
            ETCParams(n_tasks=64, n_machines=8, consistency="inconsistent"), rng
        )
        assert not (np.diff(etc, axis=1) >= 0).all()

    def test_heterogeneity_ranges_respected(self, rng):
        p = ETCParams(n_tasks=2000, n_machines=4, task_heterogeneity=10, machine_heterogeneity=5)
        etc = generate_etc(p, rng)
        assert etc.max() <= 10 * 5
        assert etc.min() >= 1.0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            ETCParams(n_tasks=0)
        with pytest.raises(ValueError):
            ETCParams(task_heterogeneity=1.0)
        with pytest.raises(ValueError):
            ETCParams(consistency="weird")

    def test_reproducible(self):
        p = ETCParams(n_tasks=16, n_machines=4)
        a = generate_etc(p, make_rng(5))
        b = generate_etc(p, make_rng(5))
        assert np.array_equal(a, b)


class TestMetrics:
    def test_machine_loads(self):
        etc = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        assign = np.array([0, 1, 0])
        loads = machine_loads(etc, assign)
        assert loads.tolist() == [6.0, 4.0]

    def test_makespan(self):
        etc = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert makespan(etc, np.array([0, 0])) == 4.0
        assert makespan(etc, np.array([0, 1])) == 4.0
        assert makespan(etc, np.array([1, 0])) == 3.0

    def test_flowtime_fifo(self):
        etc = np.array([[2.0, 9.0], [3.0, 9.0]])
        # Both on machine 0: completions 2 and 5 -> flowtime 7.
        assert flowtime(etc, np.array([0, 0])) == 7.0

    def test_assignment_validation(self):
        etc = np.ones((3, 2))
        with pytest.raises(ValueError):
            makespan(etc, np.array([0, 1]))  # wrong length
        with pytest.raises(ValueError):
            makespan(etc, np.array([0, 1, 5]))  # machine out of range


class TestHeuristics:
    def _etc(self, seed=0, **kw):
        base = dict(n_tasks=64, n_machines=8, consistency="inconsistent")
        base.update(kw)
        return generate_etc(ETCParams(**base), make_rng(seed))

    def test_all_return_valid_assignments(self):
        etc = self._etc()
        for name, h in HEURISTICS.items():
            assign = h(etc)
            assert assign.shape == (64,)
            assert assign.min() >= 0 and assign.max() < 8

    def test_met_picks_fastest_machine_per_task(self):
        etc = self._etc()
        assign = met(etc)
        assert np.array_equal(assign, etc.argmin(axis=1))

    def test_met_degenerates_on_consistent(self):
        etc = self._etc(consistency="consistent")
        assign = met(etc)
        assert set(assign.tolist()) == {0}  # everything on the global best

    def test_mct_beats_met_on_consistent(self):
        etc = self._etc(consistency="consistent")
        assert makespan(etc, mct(etc)) < makespan(etc, met(etc))

    def test_min_min_beats_olb(self):
        etc = self._etc()
        assert makespan(etc, min_min(etc)) < makespan(etc, olb(etc))

    def test_makespans_in_expected_band(self):
        """Min-min, Sufferage and MCT all land well under OLB; Max-min is
        between (the qualitative ordering from Braun et al.)."""
        etc = self._etc(seed=3, n_tasks=128)
        spans = {name: makespan(etc, h(etc)) for name, h in HEURISTICS.items()}
        assert spans["Min-min"] < spans["OLB"]
        assert spans["Sufferage"] < spans["OLB"]
        assert spans["MCT"] < spans["OLB"]

    def test_single_machine(self):
        etc = self._etc(n_machines=1)
        for h in HEURISTICS.values():
            assert set(h(etc).tolist()) == {0}

    def test_bad_etc_rejected(self):
        with pytest.raises(ValueError):
            min_min(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            olb(np.ones(3))


class TestGAScheduler:
    def test_improves_over_random(self):
        etc = generate_etc(ETCParams(n_tasks=64, n_machines=8), make_rng(0))
        rng = make_rng(1)
        random_span = makespan(etc, rng.integers(0, 8, size=64))
        res = ga_schedule(etc, GASchedulerConfig(generations=60), make_rng(2))
        assert res.makespan < random_span

    def test_at_least_as_good_as_min_min_seed(self):
        etc = generate_etc(ETCParams(n_tasks=64, n_machines=8), make_rng(3))
        res = ga_schedule(etc, GASchedulerConfig(generations=80), make_rng(4))
        assert res.makespan <= makespan(etc, min_min(etc)) + 1e-9

    def test_history_tracks_progress(self):
        etc = generate_etc(ETCParams(n_tasks=32, n_machines=4), make_rng(5))
        res = ga_schedule(etc, GASchedulerConfig(generations=30), make_rng(6))
        assert res.generations == 30
        assert len(res.history) == 30

    def test_without_seed(self):
        etc = generate_etc(ETCParams(n_tasks=32, n_machines=4), make_rng(7))
        res = ga_schedule(
            etc, GASchedulerConfig(generations=20, seed_min_min=False), make_rng(8)
        )
        assert res.assignment.shape == (32,)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GASchedulerConfig(population_size=1)
        with pytest.raises(ValueError):
            GASchedulerConfig(elitism=100, population_size=100)
        with pytest.raises(ValueError):
            GASchedulerConfig(flowtime_weight=2.0)

    def test_reproducible(self):
        etc = generate_etc(ETCParams(n_tasks=32, n_machines=4), make_rng(9))
        a = ga_schedule(etc, GASchedulerConfig(generations=15), make_rng(10))
        b = ga_schedule(etc, GASchedulerConfig(generations=15), make_rng(10))
        assert np.array_equal(a.assignment, b.assignment)
