"""Chaos tests: the resilient evaluation path under real worker failures.

These spawn process pools and kill/wedge real workers (``os._exit``,
``time.sleep``), so they are marked ``chaos`` and kept off the default CI
path; run them with ``pytest -m chaos``.
"""

import pytest

from repro.core import (
    GAConfig,
    ResiliencePolicy,
    ResilientEvaluator,
    SerialEvaluator,
    WorkerPoolError,
    make_rng,
)
from repro.core.fitness import FitnessFunction
from repro.core.ga import initial_population
from repro.core.parallel import EvaluationContext, Evaluator, ProcessPoolEvaluator
from repro.domains import HanoiDomain
from repro.obs import MetricsRegistry, Tracer
from repro.obs.sinks import MemoryRecorder


NO_SLEEP = dict(sleep=lambda s: None)


@pytest.fixture
def ctx(hanoi3):
    return EvaluationContext(hanoi3, hanoi3.initial_state, FitnessFunction(hanoi3))


@pytest.fixture
def cfg():
    return GAConfig(population_size=24, generations=5, max_len=12, init_length=6)


def expected_fitness(cfg, ctx):
    pop = initial_population(cfg, make_rng(3))
    SerialEvaluator().evaluate(pop, ctx)
    return [ind.fitness.total for ind in pop]


class _AlwaysBroken(Evaluator):
    """Inner evaluator stub whose pool is permanently broken."""

    def __init__(self):
        self.calls = 0

    def evaluate(self, population, context):
        self.calls += 1
        raise WorkerPoolError("simulated broken pool")


class TestPolicy:
    def test_backoff_caps(self):
        policy = ResiliencePolicy(backoff_base_s=0.5, backoff_cap_s=2.0, **NO_SLEEP)
        assert [policy.backoff_s(i) for i in range(4)] == [0.5, 1.0, 2.0, 2.0]

    @pytest.mark.parametrize(
        "kwargs",
        [dict(retry_max=-1), dict(degrade_after=0), dict(backoff_base_s=-1),
         dict(eval_timeout_s=0)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ResiliencePolicy(**kwargs)


@pytest.mark.chaos
class TestKillResilience:
    def test_survives_worker_crashes_with_correct_fitness(self, cfg, ctx):
        expected = expected_fitness(cfg, ctx)
        pop = initial_population(cfg, make_rng(3))
        policy = ResiliencePolicy(retry_max=2, eval_timeout_s=30.0, **NO_SLEEP)
        with ResilientEvaluator(policy=policy, worker_crashes=2) as ev:
            ev.evaluate(pop, ctx)
            assert [ind.fitness.total for ind in pop] == expected
            assert not ev.degraded  # the pool recovered; no permanent fallback

    def test_survives_hung_worker_via_batch_timeout(self, cfg, ctx):
        expected = expected_fitness(cfg, ctx)
        pop = initial_population(cfg, make_rng(3))
        policy = ResiliencePolicy(retry_max=2, eval_timeout_s=2.0, **NO_SLEEP)
        # One worker so the wedged process stalls the whole batch: the
        # per-batch timeout is the only thing standing between us and a hang.
        with ResilientEvaluator(
            ProcessPoolEvaluator(processes=1), policy=policy,
            worker_hangs=1, hang_seconds=30.0,
        ) as ev:
            ev.evaluate(pop, ctx)
            assert [ind.fitness.total for ind in pop] == expected

    def test_retry_events_and_counters(self, cfg, ctx):
        pop = initial_population(cfg, make_rng(3))
        rec = MemoryRecorder()
        metrics = MetricsRegistry()
        policy = ResiliencePolicy(retry_max=2, eval_timeout_s=30.0, **NO_SLEEP)
        with ResilientEvaluator(policy=policy, worker_crashes=1) as ev:
            ev.bind_observability(Tracer([rec]), metrics, scope="test")
            ev.evaluate(pop, ctx)
        retries = [e for e in rec.events if e.kind == "retry"]
        assert retries and retries[0].component == "evaluator"
        assert "WorkerPoolError" in retries[0].reason
        assert metrics.counter("retries").value >= 1
        assert metrics.counter("degradations").value == 0


@pytest.mark.chaos
class TestDegradation:
    def test_degrades_to_serial_after_consecutive_failures(self, cfg, ctx):
        expected = expected_fitness(cfg, ctx)
        inner = _AlwaysBroken()
        rec = MemoryRecorder()
        metrics = MetricsRegistry()
        policy = ResiliencePolicy(retry_max=1, degrade_after=2, **NO_SLEEP)
        with ResilientEvaluator(inner, policy=policy) as ev:
            ev.bind_observability(Tracer([rec]), metrics, scope="test")
            for _ in range(2):  # two consecutive batches exhaust their retries
                pop = initial_population(cfg, make_rng(3))
                ev.evaluate(pop, ctx)
                assert [ind.fitness.total for ind in pop] == expected
            assert ev.degraded
            calls_at_degrade = inner.calls
            # Degraded: later batches go straight to serial, pool untouched.
            pop = initial_population(cfg, make_rng(3))
            ev.evaluate(pop, ctx)
            assert [ind.fitness.total for ind in pop] == expected
            assert inner.calls == calls_at_degrade
        degraded = [e for e in rec.events if e.kind == "evaluator-degraded"]
        assert len(degraded) == 1
        assert metrics.counter("degradations").value == 1

    def test_success_resets_consecutive_failure_count(self, cfg, ctx):
        class FlakyOnce(Evaluator):
            def __init__(self):
                self.fail_next = True
                self.serial = SerialEvaluator()

            def evaluate(self, population, context):
                if self.fail_next:
                    self.fail_next = False
                    raise WorkerPoolError("transient")
                self.serial.evaluate(population, context)

        policy = ResiliencePolicy(retry_max=1, degrade_after=1, **NO_SLEEP)
        with ResilientEvaluator(FlakyOnce(), policy=policy) as ev:
            pop = initial_population(cfg, make_rng(3))
            ev.evaluate(pop, ctx)  # first attempt fails, retry succeeds
            assert not ev.degraded

    def test_unpicklable_domain_fails_with_clear_error_then_degrades(self, cfg):
        class UnpicklableDomain(HanoiDomain):
            def __reduce__(self):
                raise TypeError("deliberately unpicklable")

        bad = UnpicklableDomain(3)
        bad_ctx = EvaluationContext(bad, bad.initial_state, FitnessFunction(bad))
        # Satellite fix: the bare pool names the domain type instead of an
        # opaque BrokenProcessPool.
        with ProcessPoolEvaluator() as pool:
            with pytest.raises(WorkerPoolError, match="UnpicklableDomain"):
                pool.ensure_started(bad_ctx)
        # The wrapper turns the same failure into a serial fallback.
        policy = ResiliencePolicy(retry_max=1, degrade_after=1, **NO_SLEEP)
        pop = initial_population(cfg, make_rng(3))
        with ResilientEvaluator(policy=policy) as ev:
            ev.evaluate(pop, bad_ctx)
            assert ev.degraded
            assert all(ind.fitness is not None for ind in pop)


@pytest.mark.chaos
class TestPlannerIntegration:
    def test_resilient_spec_matches_serial_outcome(self, hanoi3):
        from repro.core import GAPlanner

        cfg = GAConfig(population_size=30, generations=20, max_len=12, init_length=6)
        serial = GAPlanner(hanoi3, cfg, seed=5, evaluator="serial").solve()
        policy = ResiliencePolicy(retry_max=2, eval_timeout_s=30.0, **NO_SLEEP)
        resilient = GAPlanner(
            hanoi3, cfg, seed=5,
            evaluator=lambda: ResilientEvaluator(policy=policy, worker_crashes=1),
        ).solve()
        assert resilient.solved == serial.solved
        assert resilient.goal_fitness == pytest.approx(serial.goal_fitness)
        assert resilient.plan == serial.plan
