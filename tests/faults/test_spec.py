"""Tests for the fault-spec grammar."""

import pytest

from repro.faults import FAULT_KINDS, FaultClause, FaultSpec, parse_fault_spec


class TestParsing:
    def test_full_spec_round_trips(self):
        spec = parse_fault_spec(
            "machine-crash:p=0.02;slowdown:factor=4;worker-crash:n=2;eval-timeout:s=5"
        )
        assert len(spec.clauses) == 4
        assert str(spec) == "machine-crash:p=0.02;slowdown:factor=4;worker-crash:n=2;eval-timeout:s=5"
        # canonical form re-parses to an equal spec
        assert parse_fault_spec(str(spec)) == spec

    def test_whitespace_and_empty_clauses_tolerated(self):
        spec = parse_fault_spec(" machine-crash: p=0.5 ; ; slowdown : factor=2 ")
        assert [c.fault for c in spec] == ["machine-crash", "slowdown"]

    def test_optional_params_defaulted(self):
        (clause,) = parse_fault_spec("slowdown:factor=3").clauses
        assert clause["p"] == 1.0
        assert clause["duration"] == 0.0

    def test_canonical_form_drops_defaults(self):
        assert str(parse_fault_spec("slowdown:factor=3,p=1.0")) == "slowdown:factor=3"
        assert str(parse_fault_spec("slowdown:factor=3,p=0.5")) == "slowdown:factor=3,p=0.5"

    def test_typed_views(self):
        spec = parse_fault_spec(
            "worker-crash:n=2;worker-crash:n=1;worker-hang:n=1,s=4;eval-timeout:s=9;eval-timeout:s=5"
        )
        assert spec.worker_crashes == 3
        assert spec.worker_hangs == 1
        assert spec.hang_seconds == 4.0
        assert spec.eval_timeout_s == 5.0  # strictest wins
        assert spec.grid_clauses == ()

    def test_grid_clauses_view(self):
        spec = parse_fault_spec("machine-crash:p=0.1;worker-crash:n=1;partition:p=0.2")
        assert [c.fault for c in spec.grid_clauses] == ["machine-crash", "partition"]


class TestStrictness:
    @pytest.mark.parametrize(
        "bad",
        [
            "",  # no clauses
            "  ;  ",  # only empty clauses
            "meteor-strike:p=1",  # unknown kind
            "machine-crash",  # missing required p
            "machine-crash:q=0.5",  # unknown parameter
            "machine-crash:p",  # not key=value
            "machine-crash:p=often",  # not a number
            "machine-crash:p=1.5",  # p out of range
            "slowdown:factor=1",  # factor must be > 1
            "slowdown:factor=0.5",
            "worker-crash:n=-1",  # negative count
            "worker-crash:n=1.5",  # non-integer count
            "eval-timeout:s=0",  # non-positive timeout
            "machine-crash:p=0.1,restore=-2",  # negative restore
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_error_names_offending_clause(self):
        with pytest.raises(ValueError, match="meteor-strike"):
            parse_fault_spec("machine-crash:p=0.1;meteor-strike:p=1")

    def test_every_registered_kind_parses(self):
        for kind, (required, _) in FAULT_KINDS.items():
            args = ",".join(f"{name}=2" for name in required)
            clause = f"{kind}:{args}" if args else kind
            if "p" in required:
                clause = clause.replace("p=2", "p=0.5")
            spec = parse_fault_spec(clause)
            assert spec.clauses[0].fault == kind

    def test_clause_constructor_validates_too(self):
        with pytest.raises(ValueError, match="missing required"):
            FaultClause(fault="machine-crash", params={})
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultClause(fault="nope", params={})

    def test_spec_is_iterable(self):
        spec = parse_fault_spec("partition:p=0.5")
        assert list(spec) == list(spec.clauses)
        assert isinstance(spec, FaultSpec)


class TestArrivalClauses:
    def test_arrival_parses_with_defaults(self):
        (clause,) = parse_fault_spec("arrival:rate=0.2").clauses
        assert clause["rate"] == 0.2
        assert clause["n"] == 0.0  # unbounded by default

    def test_arrival_cap_round_trips(self):
        spec = parse_fault_spec("arrival:rate=0.5,n=10")
        assert str(spec) == "arrival:rate=0.5,n=10"
        assert parse_fault_spec(str(spec)) == spec

    def test_arrival_clauses_view(self):
        spec = parse_fault_spec("machine-crash:p=0.1;arrival:rate=0.2;arrival:rate=0.05")
        assert [c["rate"] for c in spec.arrival_clauses] == [0.2, 0.05]
        # arrival clauses are workload, not grid: the injector ignores them
        assert [c.fault for c in spec.grid_clauses] == ["machine-crash"]

    @pytest.mark.parametrize(
        "bad",
        [
            "arrival",  # missing required rate
            "arrival:rate=0",  # rate must be positive
            "arrival:rate=-0.5",
            "arrival:rate=0.2,n=-1",  # negative cap
            "arrival:rate=0.2,n=1.5",  # non-integer cap
            "arrival:rate=0.2,burst=3",  # unknown parameter
        ],
    )
    def test_bad_arrival_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)
