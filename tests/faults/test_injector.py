"""Tests for deterministic fault-plan materialisation and chaos determinism."""

import pytest

from repro.faults import FaultInjector, parse_fault_spec
from repro.grid import (
    CoordinationService,
    greedy_grid_planner,
    imaging_pipeline,
)


SPEC = "machine-crash:p=0.35,restore=20;slowdown:factor=3,p=0.3"


class TestFaultPlan:
    def test_same_seed_identical_timeline(self):
        onto1, _ = imaging_pipeline()
        onto2, _ = imaging_pipeline()
        plan1 = FaultInjector(SPEC, seed=3).plan(topology=onto1.topology)
        plan2 = FaultInjector(SPEC, seed=3).plan(topology=onto2.topology)
        assert plan1.grid_events == plan2.grid_events
        assert plan1 == plan2

    def test_different_seed_different_timeline(self):
        onto, _ = imaging_pipeline()
        timelines = [
            FaultInjector("machine-crash:p=0.9", seed=s).plan(topology=onto.topology).grid_events
            for s in range(5)
        ]
        assert any(t != timelines[0] for t in timelines[1:])

    def test_events_sorted_and_within_horizon(self):
        onto, _ = imaging_pipeline()
        plan = FaultInjector("machine-crash:p=1.0;slowdown:factor=2", seed=1).plan(
            topology=onto.topology, horizon=40.0
        )
        times = [e.time for e in plan.grid_events]
        assert times == sorted(times)
        fails = [e for e in plan.grid_events if e.kind == "fail"]
        assert fails and all(0.0 <= e.time < 40.0 for e in fails)
        # p=1.0 crashes every machine exactly once
        assert {e.machine for e in fails} == set(onto.topology.machine_names())

    def test_restore_offset(self):
        onto, _ = imaging_pipeline()
        plan = FaultInjector("machine-crash:p=1.0,restore=5", seed=2).plan(
            topology=onto.topology
        )
        fails = {e.machine: e.time for e in plan.grid_events if e.kind == "fail"}
        restores = {e.machine: e.time for e in plan.grid_events if e.kind == "restore"}
        assert set(fails) == set(restores)
        for name, t in fails.items():
            assert restores[name] == pytest.approx(t + 5.0)

    def test_slowdown_value_is_base_plus_factor(self):
        onto, _ = imaging_pipeline()
        plan = FaultInjector("slowdown:factor=4", seed=0).plan(topology=onto.topology)
        loads = [e for e in plan.grid_events if e.kind == "load"]
        assert loads
        for e in loads:
            base = 0.0  # imaging_pipeline machines start unloaded
            assert e.value == pytest.approx(base + 3.0)

    def test_link_clauses_cover_link_pairs(self):
        onto, _ = imaging_pipeline()
        plan = FaultInjector("partition:p=1.0", seed=0).plan(topology=onto.topology)
        targets = {(e.machine, e.peer) for e in plan.grid_events}
        assert targets == set(onto.topology.link_pairs())

    def test_execution_clauses_need_no_topology(self):
        plan = FaultInjector("worker-crash:n=2;worker-hang:n=1,s=4;eval-timeout:s=5").plan()
        assert plan.grid_events == ()
        assert plan.worker_crashes == 2
        assert plan.worker_hangs == 1
        assert plan.hang_seconds == 4.0
        assert plan.eval_timeout_s == 5.0

    def test_adding_clause_does_not_perturb_earlier_draws(self):
        onto, _ = imaging_pipeline()
        base = FaultInjector("machine-crash:p=0.5", seed=7).plan(topology=onto.topology)
        extended = FaultInjector("machine-crash:p=0.5;partition:p=0.5", seed=7).plan(
            topology=onto.topology
        )
        base_crashes = [e for e in base.grid_events if e.kind in ("fail", "restore")]
        ext_crashes = [e for e in extended.grid_events if e.kind in ("fail", "restore")]
        assert base_crashes == ext_crashes

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            FaultInjector("partition:p=1").plan(horizon=0.0)

    def test_describe_mentions_every_fault(self):
        onto, _ = imaging_pipeline()
        plan = FaultInjector(
            "machine-crash:p=1.0;worker-crash:n=2;eval-timeout:s=5", seed=0
        ).plan(topology=onto.topology)
        text = plan.describe()
        for machine in onto.topology.machine_names():
            assert machine in text
        assert "worker crashes: 2" in text
        assert "eval timeout" in text

    def test_accepts_pre_parsed_spec(self):
        spec = parse_fault_spec("worker-crash:n=1")
        assert FaultInjector(spec).plan().worker_crashes == 1


class TestChaosDeterminism:
    """Acceptance: same spec + seed → identical timeline AND identical outcome."""

    def _run(self):
        onto, domain = imaging_pipeline()
        plan = FaultInjector(SPEC, seed=3).plan(topology=onto.topology)
        service = CoordinationService(onto, greedy_grid_planner(), max_replans=3)
        report = service.run(domain, events=plan.grid_events)
        return plan, report

    def test_chaos_run_is_reproducible(self):
        plan1, report1 = self._run()
        plan2, report2 = self._run()
        assert plan1.grid_events == plan2.grid_events
        assert report1.success == report2.success
        assert report1.replans == report2.replans
        assert report1.total_makespan == pytest.approx(report2.total_makespan)
        assert report1.final_placements == report2.final_placements
        assert [a.plan for a in report1.attempts] == [a.plan for a in report2.attempts]

    def test_chaos_run_actually_recovers(self):
        # The seed/spec pair is chosen so the workflow survives real faults
        # via replanning — guard against the demo degenerating to fault-free.
        plan, report = self._run()
        assert any(e.kind == "fail" for e in plan.grid_events)
        assert report.replans >= 1
        assert report.success
