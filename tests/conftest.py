"""Shared fixtures for the test suite.

The fallback per-test timeout shim lives in the repo-root ``conftest.py``
so it also covers ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.core import GAConfig, make_rng
from repro.domains import HanoiDomain, SlidingTileDomain


@pytest.fixture
def rng():
    return make_rng(12345)


@pytest.fixture
def hanoi3():
    return HanoiDomain(3)


@pytest.fixture
def hanoi5():
    return HanoiDomain(5)


@pytest.fixture
def tile3():
    return SlidingTileDomain(3)


@pytest.fixture
def small_config():
    """A config small enough for sub-second GA runs in tests."""
    return GAConfig(
        population_size=20,
        generations=30,
        max_len=64,
        init_length=16,
    )
