"""Tests for the Towers of Hanoi domain."""

import pytest

from repro.domains import HanoiDomain, HanoiMove, hanoi_strips_problem, optimal_hanoi_moves
from repro.planning import Plan
from repro.planning.search import breadth_first_search


class TestConstruction:
    def test_initial_state(self):
        d = HanoiDomain(3)
        assert d.initial_state == ((3, 2, 1), (), ())

    def test_bad_disk_count(self):
        with pytest.raises(ValueError):
            HanoiDomain(0)

    def test_bad_goal_stake(self):
        with pytest.raises(ValueError):
            HanoiDomain(3, goal_stake=5)

    def test_optimal_length(self):
        assert HanoiDomain(5).optimal_length == 31


class TestMoves:
    def test_initial_moves_only_from_a(self, hanoi3):
        ops = hanoi3.valid_operations(hanoi3.initial_state)
        assert all(mv.src == 0 for mv in ops)
        assert {mv.dst for mv in ops} == {1, 2}

    def test_larger_never_on_smaller(self, hanoi3):
        # d1 on B, d2+d3 on A: moving A's top (d2) onto B (d1) is illegal.
        state = ((3, 2), (1,), ())
        ops = hanoi3.valid_operations(state)
        assert HanoiMove(0, 1) not in ops
        assert HanoiMove(0, 2) in ops  # d2 to empty C is fine
        assert HanoiMove(1, 0) in ops  # d1 onto d2 is fine

    def test_apply_moves_top_disk(self, hanoi3):
        nxt = hanoi3.apply(hanoi3.initial_state, HanoiMove(0, 1))
        assert nxt == ((3, 2), (1,), ())

    def test_every_state_has_two_or_three_moves(self, hanoi3, rng):
        state = hanoi3.initial_state
        for _ in range(100):
            ops = hanoi3.valid_operations(state)
            assert 2 <= len(ops) <= 3
            state = hanoi3.apply(state, ops[int(rng.integers(0, len(ops)))])

    def test_disk_conservation(self, hanoi5, rng):
        state = hanoi5.initial_state
        for _ in range(200):
            ops = hanoi5.valid_operations(state)
            state = hanoi5.apply(state, ops[int(rng.integers(0, len(ops)))])
            disks = sorted(d for stack in state for d in stack)
            assert disks == [1, 2, 3, 4, 5]
            for stack in state:
                assert list(stack) == sorted(stack, reverse=True)


class TestGoalFitness:
    def test_initial_is_zero(self, hanoi3):
        assert hanoi3.goal_fitness(hanoi3.initial_state) == 0.0

    def test_goal_is_one(self, hanoi3):
        assert hanoi3.goal_fitness(((), (3, 2, 1), ())) == 1.0
        assert hanoi3.is_goal(((), (3, 2, 1), ()))

    def test_weights_are_powers_of_two(self):
        d = HanoiDomain(3)
        # Only the largest disk (weight 4 of total 7) on B.
        assert d.goal_fitness(((2, 1), (3,), ())) == pytest.approx(4 / 7)
        # All but the largest on B: the deceptive state from the paper.
        assert d.goal_fitness(((3,), (2, 1), ())) == pytest.approx(3 / 7)

    def test_paper_deception_below_half(self):
        """All disks but the largest on B scores slightly under 0.5."""
        d = HanoiDomain(5)
        state = ((5,), (4, 3, 2, 1), ())
        assert 0.4 < d.goal_fitness(state) < 0.5

    def test_alternative_goal_stake(self):
        d = HanoiDomain(3, goal_stake=2)
        assert d.is_goal(((), (), (3, 2, 1)))


class TestOptimalMoves:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_optimal_solves_in_minimum_steps(self, n):
        d = HanoiDomain(n)
        moves = optimal_hanoi_moves(n)
        assert len(moves) == 2**n - 1
        assert d.is_goal(d.execute(moves))

    def test_alternate_destination(self):
        d = HanoiDomain(3, goal_stake=2)
        moves = optimal_hanoi_moves(3, src=0, dst=2)
        assert d.is_goal(d.execute(moves))

    def test_zero_disks(self):
        assert optimal_hanoi_moves(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            optimal_hanoi_moves(-1)


class TestStripsEncoding:
    def test_matches_native_optimum(self):
        p = hanoi_strips_problem(3)
        from repro.planning import StripsDomainAdapter

        result = breadth_first_search(StripsDomainAdapter(p))
        assert result.solved and result.plan_length == 7
        assert Plan(result.plan).solves(p)

    def test_operation_count(self):
        # move(d, from, to): d over disks, from/to over valid supports.
        p = hanoi_strips_problem(2)
        # d1 can sit on d2/A/B/C (from,to pairs of distinct supports ≠ d1);
        # d2 only on stakes. Exact count is less interesting than validity:
        assert len(p.operations) > 0
        for op in p.operations:
            assert op.name.startswith("move(")

    def test_bad_disk_count(self):
        with pytest.raises(ValueError):
            hanoi_strips_problem(0)
