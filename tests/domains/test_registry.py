"""Tests for the domain registry (name → factory + capability flags)."""

import pytest

from repro.domains import registry
from repro.domains.registry import DomainEntry


class TestLookup:
    def test_builtins_registered(self):
        names = registry.domain_names()
        assert {"hanoi", "tile", "cube", "blocks", "briefcase", "navigation"} <= set(
            names
        )
        assert names == sorted(names)

    def test_create_forwards_arguments(self):
        domain = registry.create("hanoi", 4)
        assert domain.n_disks == 4
        tile = registry.create("tile", 3)
        assert tile.n == 3

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="hanoi"):
            registry.get_entry("rubik")

    def test_duplicate_registration_rejected(self):
        entry = registry.get_entry("hanoi")
        with pytest.raises(ValueError, match="already registered"):
            registry.register(entry)
        assert registry.register(entry, replace=True) is entry

    def test_list_entries_sorted(self):
        entries = registry.list_entries()
        assert [e.name for e in entries] == registry.domain_names()


class TestCapabilityFlags:
    def test_has_kernel_matches_reality(self):
        # The flag describes the type: a default-size instance must expose
        # a kernel iff the entry claims the capability.
        sizes = {"hanoi": (3,), "tile": (3,), "cube": ()}
        for entry in registry.list_entries():
            if entry.name not in sizes:
                continue
            assert entry.has_kernel
            assert entry.create(*sizes[entry.name]).kernel() is not None, entry.name
        nav = registry.create("navigation", 4, 4, [(0, 0)], [(3, 3)])
        assert not registry.get_entry("navigation").has_kernel
        assert nav.kernel() is None

    def test_strips_flags(self):
        assert registry.get_entry("hanoi").strips
        assert registry.get_entry("blocks").strips
        assert registry.get_entry("briefcase").strips
        assert not registry.get_entry("tile").strips

    def test_descriptions_present(self):
        assert all(e.description for e in registry.list_entries())
