"""Tests for linear conflict, pattern databases, and accurate tile fitness."""

import pytest

from repro.core import make_rng
from repro.domains import (
    AccurateTileDomain,
    SlidingTileDomain,
    accurate_tile_fitness,
    build_pattern_database,
    linear_conflict,
    make_disjoint_pdb_heuristic,
    make_linear_conflict_heuristic,
)
from repro.domains.sliding_tile import goal_tuple
from repro.planning.search import astar


def _random_state(domain, seed, steps=40):
    rng = make_rng(seed)
    state = domain.initial_state
    for _ in range(steps):
        ops = domain.valid_operations(state)
        state = domain.apply(state, ops[int(rng.integers(0, len(ops)))])
    return state


class TestLinearConflict:
    def test_zero_at_goal(self, tile3):
        assert linear_conflict(tile3.goal_state, tile3.goal_state, 3) == 0

    def test_dominates_manhattan(self, tile3):
        for seed in range(10):
            s = _random_state(tile3, seed)
            assert linear_conflict(s, tile3.goal_state, 3) >= tile3.manhattan(s)

    def test_detects_row_conflict(self):
        # 2 and 1 swapped in the top row: manhattan 2, conflict adds 2.
        goal = goal_tuple(3)
        state = (2, 1, 3, 4, 5, 6, 7, 8, 0)
        assert linear_conflict(state, goal, 3) == 4

    def test_detects_column_conflict(self):
        goal = goal_tuple(3)
        # Column 0 holds 7, 4, 1 whose goal rows are 2, 1, 0 — fully
        # reversed, so two tiles must leave the column: +4 over Manhattan.
        state = (7, 2, 3, 4, 5, 6, 1, 8, 0)
        assert linear_conflict(state, goal, 3) == 4 + 4

    def test_never_exceeds_true_distance(self, tile3):
        """Admissibility against exact optima from A* + Manhattan."""
        man = lambda s: float(tile3.manhattan(s))
        for seed in range(6):
            s = _random_state(tile3, seed, steps=25)
            optimal = astar(tile3, heuristic=man, start_state=s).plan_length
            assert linear_conflict(s, tile3.goal_state, 3) <= optimal

    def test_admissible_optimal_astar(self, tile3):
        h = make_linear_conflict_heuristic(tile3)
        man = lambda s: float(tile3.manhattan(s))
        r_lc = astar(tile3, heuristic=h)
        r_m = astar(tile3, heuristic=man)
        assert r_lc.plan_length == r_m.plan_length  # both optimal
        assert r_lc.expanded <= r_m.expanded  # lc is at least as informed


class TestPatternDatabase:
    def test_goal_lookup_is_zero(self, tile3):
        db = build_pattern_database(3, [1, 2, 3])
        assert db.lookup(tile3.goal_state) == 0

    def test_lookup_bounds_true_distance(self, tile3):
        db = build_pattern_database(3, [1, 2, 3, 4])
        man = lambda s: float(tile3.manhattan(s))
        for seed in range(5):
            s = _random_state(tile3, seed)
            r = astar(tile3, heuristic=man, start_state=s)
            assert db.lookup(s) <= r.plan_length

    def test_bad_pattern_rejected(self):
        with pytest.raises(ValueError):
            build_pattern_database(3, [0, 1])
        with pytest.raises(ValueError):
            build_pattern_database(3, [])
        with pytest.raises(ValueError):
            build_pattern_database(3, [9])

    def test_table_size(self):
        # Positions of k pattern tiles among n² cells: n²!/(n²-k)! entries.
        db = build_pattern_database(3, [1, 2])
        assert len(db) == 9 * 8


class TestDisjointPDB:
    def test_admissible_and_optimal(self, tile3):
        h = make_disjoint_pdb_heuristic(tile3)
        man = lambda s: float(tile3.manhattan(s))
        r_pdb = astar(tile3, heuristic=h)
        r_m = astar(tile3, heuristic=man)
        assert r_pdb.plan_length == r_m.plan_length
        assert r_pdb.expanded < r_m.expanded  # strictly more informed here

    def test_dominates_manhattan_on_samples(self, tile3):
        h = make_disjoint_pdb_heuristic(tile3)
        for seed in range(8):
            s = _random_state(tile3, seed)
            assert h(s) >= tile3.manhattan(s) - 1e-9

    def test_partition_must_cover(self, tile3):
        with pytest.raises(ValueError, match="cover"):
            make_disjoint_pdb_heuristic(tile3, partition=[[1, 2], [3, 4]])

    def test_custom_partition(self, tile3):
        h = make_disjoint_pdb_heuristic(tile3, partition=[[1, 2, 3], [4, 5], [6, 7, 8]])
        assert h(tile3.goal_state) == 0.0


class TestAccurateFitness:
    def test_range_and_goal(self, tile3):
        f = accurate_tile_fitness(tile3)
        assert f(tile3.goal_state) == 1.0
        for seed in range(5):
            s = _random_state(tile3, seed)
            assert 0.0 <= f(s) <= 1.0

    def test_accurate_domain_goal_semantics(self):
        d = AccurateTileDomain(3)
        assert d.goal_fitness(d.goal_state) == 1.0
        assert d.is_goal(d.goal_state)
        assert d.goal_fitness(d.initial_state) < 1.0
        assert not d.is_goal(d.initial_state)

    def test_unknown_heuristic_name(self):
        with pytest.raises(ValueError, match="heuristic"):
            AccurateTileDomain(3, "magic")

    def test_pdb_variant_constructs(self):
        d = AccurateTileDomain(3, "pdb")
        assert d.goal_fitness(d.goal_state) == 1.0
