"""Tests for Blocks World, Navigation, and Briefcase domains."""

import pytest

from repro.core import GAConfig, GAPlanner, make_rng
from repro.domains import (
    BlocksWorldDomain,
    BriefcaseDomain,
    GridNavigationDomain,
    NavMove,
    blocks_world_problem,
    briefcase_problem,
    towers_to_atoms,
)
from repro.planning import Plan, atom
from repro.planning.search import astar, breadth_first_search, goal_gap


class TestBlocksWorld:
    def test_towers_to_atoms(self):
        atoms = towers_to_atoms([["a", "b"], ["c"]])
        assert atom("ontable", "a") in atoms
        assert atom("on", "b", "a") in atoms
        assert atom("clear", "b") in atoms
        assert atom("clear", "c") in atoms
        assert atom("handempty") in atoms

    def test_duplicate_block_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            towers_to_atoms([["a"], ["a"]])

    def test_empty_tower_rejected(self):
        with pytest.raises(ValueError):
            towers_to_atoms([[]])

    def test_block_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            blocks_world_problem([["a"]], [["b"]])

    def test_bfs_solves_reversal(self):
        p = blocks_world_problem([["a", "b", "c"]], [["c", "b", "a"]])
        from repro.planning import StripsDomainAdapter

        r = breadth_first_search(StripsDomainAdapter(p))
        assert r.solved
        assert Plan(r.plan).solves(p)

    def test_already_solved(self):
        p = blocks_world_problem([["a", "b"]], [["a", "b"]])
        assert p.is_goal(p.initial)

    def test_ga_solves_small_instance(self):
        d = BlocksWorldDomain([["a", "b", "c"]], [["c", "b", "a"]])
        cfg = GAConfig(population_size=80, generations=150, max_len=40, init_length=12)
        outcome = GAPlanner(d, cfg, seed=0).solve()
        assert outcome.solved
        assert Plan(outcome.plan).solves(d.problem)


class TestNavigation:
    def test_construction_validation(self):
        with pytest.raises(ValueError, match="outside"):
            GridNavigationDomain(3, 3, [(5, 5)], [(0, 0)])
        with pytest.raises(ValueError, match="obstacle"):
            GridNavigationDomain(3, 3, [(0, 0)], [(1, 1)], obstacles=[(0, 0)])
        with pytest.raises(ValueError, match="share"):
            GridNavigationDomain(3, 3, [(0, 0), (0, 0)], [(1, 1), (2, 2)])

    def test_moves_respect_bounds_and_obstacles(self):
        d = GridNavigationDomain(3, 3, [(0, 0)], [(2, 2)], obstacles=[(0, 1)])
        ops = d.valid_operations(d.initial_state)
        dirs = {op.direction for op in ops}
        assert dirs == {"south"}  # north/west out of bounds, east blocked

    def test_robots_block_each_other(self):
        d = GridNavigationDomain(1, 3, [(0, 0), (0, 1)], [(0, 2), (0, 1)])
        ops = d.valid_operations(d.initial_state)
        # Robot 0 cannot move east onto robot 1.
        assert NavMove(0, "east") not in ops
        assert NavMove(1, "east") in ops

    def test_goal_fitness_decreases_with_distance(self):
        d = GridNavigationDomain(5, 5, [(0, 0)], [(4, 4)])
        far = d.goal_fitness(((0, 0),))
        near = d.goal_fitness(((4, 3),))
        assert near > far
        assert d.goal_fitness(((4, 4),)) == 1.0

    def test_bfs_finds_shortest_path(self):
        d = GridNavigationDomain(4, 4, [(0, 0)], [(3, 3)])
        r = breadth_first_search(d)
        assert r.solved and r.plan_length == 6  # Manhattan distance

    def test_bfs_detours_around_obstacles(self):
        # Wall splits the top rows; the robot must go around underneath.
        wall = [(0, 1), (1, 1)]
        d = GridNavigationDomain(3, 3, [(0, 0)], [(0, 2)], obstacles=wall)
        r = breadth_first_search(d)
        assert r.solved and r.plan_length == 6  # vs Manhattan distance 2

    def test_two_robot_coordination(self):
        # Robots must swap ends of a 2-row corridor.
        d = GridNavigationDomain(2, 3, [(0, 0), (0, 2)], [(0, 2), (0, 0)])
        r = breadth_first_search(d)
        assert r.solved
        state = d.execute(r.plan)
        assert d.is_goal(state)

    def test_ga_solves_navigation(self):
        d = GridNavigationDomain(4, 4, [(0, 0)], [(3, 3)])
        cfg = GAConfig(population_size=40, generations=60, max_len=40, init_length=10)
        outcome = GAPlanner(d, cfg, seed=1).solve()
        assert outcome.solved


class TestBriefcase:
    def _domain(self):
        return BriefcaseDomain(
            locations=["home", "office", "airport"],
            object_locations={"paycheck": "home", "laptop": "office"},
            goal_locations={"paycheck": "office", "laptop": "home"},
            briefcase_at="home",
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown location"):
            briefcase_problem(["a"], {"x": "zzz"}, {"x": "a"}, "a")
        with pytest.raises(ValueError, match="unknown briefcase"):
            briefcase_problem(["a"], {"x": "a"}, {"x": "a"}, "zzz")
        with pytest.raises(ValueError, match="unknown object"):
            briefcase_problem(["a"], {"x": "a"}, {"y": "a"}, "a")

    def test_bfs_solves_swap(self):
        d = self._domain()
        r = breadth_first_search(d)
        assert r.solved
        assert Plan(r.plan).solves(d.problem)

    def test_goal_fitness_gives_transit_credit(self):
        d = self._domain()
        s0 = d.initial_state
        assert d.goal_fitness(s0) == 0.0
        # Put the paycheck in the briefcase: half credit for one of two goals.
        put_in = d.problem.operation_by_name["put-in(paycheck, home)"]
        s1 = put_in.apply(s0)
        assert d.goal_fitness(s1) == pytest.approx(0.25)

    def test_briefcase_goal_location_counts(self):
        d = BriefcaseDomain(
            locations=["a", "b"],
            object_locations={"x": "a"},
            goal_locations={"x": "b"},
            briefcase_at="a",
            goal_briefcase_at="a",
        )
        r = astar(d, heuristic=goal_gap(d, scale=6.0))
        assert r.solved
        final = d.execute(r.plan)
        assert atom("bc-at", "a") in final  # returned home

    def test_ga_solves_briefcase(self):
        d = self._domain()
        cfg = GAConfig(population_size=60, generations=120, max_len=40, init_length=10)
        outcome = GAPlanner(d, cfg, multiphase=3, seed=2).solve()
        assert outcome.solved
