"""Tests for the exact-distance Hanoi fitness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_rng
from repro.domains import HanoiDomain, StructuralHanoiDomain, hanoi_distance, optimal_hanoi_moves
from repro.planning.search import breadth_first_search


class TestHanoiDistance:
    def test_initial_state_is_optimal_length(self):
        for n in (1, 2, 3, 4, 5, 8):
            d = HanoiDomain(n)
            assert hanoi_distance(d.initial_state, n) == 2**n - 1

    def test_goal_is_zero(self):
        assert hanoi_distance(((), (3, 2, 1), ()), 3) == 0

    def test_deceptive_state_is_maximally_far(self):
        """All-but-largest on B needs a full unwind: distance 2^n - 1."""
        assert hanoi_distance(((5,), (4, 3, 2, 1), ()), 5) == 31

    def test_one_move_away(self):
        assert hanoi_distance(((1,), (3, 2), ()), 3) == 1

    def test_matches_bfs_on_random_states(self):
        """The closed form equals the true shortest path everywhere."""
        domain = HanoiDomain(3)
        rng = make_rng(0)
        state = domain.initial_state
        for _ in range(30):
            ops = domain.valid_operations(state)
            state = domain.apply(state, ops[int(rng.integers(0, len(ops)))])
            bfs = breadth_first_search(domain, start_state=state)
            assert hanoi_distance(state, 3) == bfs.plan_length

    def test_wrong_disk_count_rejected(self):
        with pytest.raises(ValueError):
            hanoi_distance(((2, 1), (), ()), 3)

    def test_alternative_goal_stake(self):
        assert hanoi_distance(((), (), (3, 2, 1)), 3, goal_stake=2) == 0
        assert hanoi_distance(((3, 2, 1), (), ()), 3, goal_stake=2) == 7

    @given(st.integers(0, 10_000), st.integers(2, 7), st.integers(0, 80))
    @settings(max_examples=40, deadline=None)
    def test_distance_changes_by_at_most_one_per_move(self, seed, n, steps):
        """|d(s) - d(s')| <= 1 along any edge — the defining property of an
        exact distance."""
        domain = HanoiDomain(n)
        rng = make_rng(seed)
        state = domain.initial_state
        prev = hanoi_distance(state, n)
        for _ in range(steps):
            ops = domain.valid_operations(state)
            state = domain.apply(state, ops[int(rng.integers(0, len(ops)))])
            cur = hanoi_distance(state, n)
            assert abs(cur - prev) <= 1
            prev = cur


class TestStructuralDomain:
    def test_fitness_is_normalised_distance(self):
        d = StructuralHanoiDomain(4)
        assert d.goal_fitness(d.initial_state) == 0.0
        assert d.goal_fitness(((), (4, 3, 2, 1), ())) == 1.0
        one_away = ((1,), (4, 3, 2), ())
        assert d.goal_fitness(one_away) == pytest.approx(1 - 1 / 15)

    def test_monotone_along_optimal_plan(self):
        """Unlike the weighted-disk fitness, the structural fitness rises
        monotonically along the optimal solution."""
        n = 4
        d = StructuralHanoiDomain(n)
        state = d.initial_state
        values = [d.goal_fitness(state)]
        for mv in optimal_hanoi_moves(n):
            state = d.apply(state, mv)
            values.append(d.goal_fitness(state))
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_weighted_fitness_is_not_monotone(self):
        """Sanity check on the contrast: the paper's fitness dips along the
        optimal plan (the deception the structural fitness removes)."""
        n = 4
        d = HanoiDomain(n)
        state = d.initial_state
        values = [d.goal_fitness(state)]
        for mv in optimal_hanoi_moves(n):
            state = d.apply(state, mv)
            values.append(d.goal_fitness(state))
        assert values != sorted(values)

    def test_is_goal_consistent(self):
        d = StructuralHanoiDomain(3)
        assert d.is_goal(((), (3, 2, 1), ()))
        assert not d.is_goal(d.initial_state)
