"""Property-based tests on domain invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_rng
from repro.domains import (
    GridNavigationDomain,
    HanoiDomain,
    SlidingTileDomain,
    is_solvable,
)


def _random_walk(domain, seed, steps):
    rng = make_rng(seed)
    state = domain.initial_state
    for _ in range(steps):
        ops = list(domain.valid_operations(state))
        if not ops:
            break
        state = domain.apply(state, ops[int(rng.integers(0, len(ops)))])
    return state


class TestHanoiInvariants:
    @given(st.integers(0, 10_000), st.integers(2, 6), st.integers(0, 60))
    @settings(max_examples=60, deadline=None)
    def test_walk_preserves_stacking_invariant(self, seed, n, steps):
        domain = HanoiDomain(n)
        state = _random_walk(domain, seed, steps)
        disks = sorted(d for stack in state for d in stack)
        assert disks == list(range(1, n + 1))
        for stack in state:
            assert list(stack) == sorted(stack, reverse=True)

    @given(st.integers(0, 10_000), st.integers(2, 6), st.integers(0, 60))
    @settings(max_examples=40, deadline=None)
    def test_goal_fitness_bounds_and_exactness(self, seed, n, steps):
        domain = HanoiDomain(n)
        state = _random_walk(domain, seed, steps)
        f = domain.goal_fitness(state)
        assert 0.0 <= f <= 1.0
        assert (f == 1.0) == domain.is_goal(state)


class TestTileInvariants:
    @given(st.integers(0, 10_000), st.integers(2, 4), st.integers(0, 80))
    @settings(max_examples=60, deadline=None)
    def test_walk_stays_solvable(self, seed, n, steps):
        """Moves preserve the Johnson–Story invariant: every reachable state
        remains solvable."""
        domain = SlidingTileDomain(n)
        state = _random_walk(domain, seed, steps)
        assert is_solvable(state, n, domain.goal_state)

    @given(st.integers(0, 10_000), st.integers(2, 4), st.integers(0, 80))
    @settings(max_examples=40, deadline=None)
    def test_goal_fitness_consistent_with_manhattan(self, seed, n, steps):
        domain = SlidingTileDomain(n)
        state = _random_walk(domain, seed, steps)
        f = domain.goal_fitness(state)
        assert 0.0 <= f <= 1.0
        assert (domain.manhattan(state) == 0) == (state == domain.goal_state)


class TestNavigationInvariants:
    @given(st.integers(0, 10_000), st.integers(0, 60))
    @settings(max_examples=40, deadline=None)
    def test_robots_never_collide_or_leave_grid(self, seed, steps):
        domain = GridNavigationDomain(
            4, 4, [(0, 0), (3, 3)], [(3, 3), (0, 0)], obstacles=[(1, 1)]
        )
        state = _random_walk(domain, seed, steps)
        assert len(set(state)) == 2  # no collision
        for r, c in state:
            assert 0 <= r < 4 and 0 <= c < 4
            assert (r, c) != (1, 1)  # not on the obstacle
