"""Tests for the Pocket Cube domain."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GAConfig, GAPlanner, make_rng
from repro.domains.pocket_cube import MOVES, CubeMove, PocketCubeDomain, scrambled_state
from repro.planning.search import astar, breadth_first_search, goal_gap


@pytest.fixture
def cube():
    return PocketCubeDomain()


class TestMoveAlgebra:
    @pytest.mark.parametrize("face", ["U", "R", "F"])
    def test_four_quarter_turns_identity(self, cube, face):
        state = cube.initial_state
        for _ in range(4):
            state = cube.apply(state, CubeMove(face, 1))
        assert state == cube.initial_state

    @pytest.mark.parametrize("face", ["U", "R", "F"])
    def test_move_and_inverse_cancel(self, cube, face):
        s1 = cube.apply(cube.initial_state, CubeMove(face, 1))
        s2 = cube.apply(s1, CubeMove(face, 3))
        assert s2 == cube.initial_state

    @pytest.mark.parametrize("face", ["U", "R", "F"])
    def test_double_is_two_quarters(self, cube, face):
        via_double = cube.apply(cube.initial_state, CubeMove(face, 2))
        via_quarters = cube.apply(
            cube.apply(cube.initial_state, CubeMove(face, 1)), CubeMove(face, 1)
        )
        assert via_double == via_quarters

    def test_dbl_corner_never_moves(self, cube):
        rng = make_rng(0)
        state = cube.initial_state
        for _ in range(100):
            state = cube.apply(state, MOVES[int(rng.integers(0, 9))])
            cp, co = state
            assert cp[6] == 6 and co[6] == 0

    @given(st.integers(0, 10_000), st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_orientation_invariant(self, seed, n):
        """Total twist stays ≡ 0 (mod 3) along any move sequence."""
        state = scrambled_state(n, make_rng(seed))
        assert sum(state[1]) % 3 == 0
        assert sorted(state[0]) == list(range(8))


class TestDomainProtocol:
    def test_nine_moves_everywhere(self, cube):
        assert len(cube.valid_operations(cube.initial_state)) == 9
        scrambled = scrambled_state(10, make_rng(1))
        assert len(cube.valid_operations(scrambled)) == 9

    def test_goal_fitness_semantics(self, cube):
        assert cube.goal_fitness(cube.initial_state) == 1.0
        assert cube.is_goal(cube.initial_state)
        one_turn = cube.apply(cube.initial_state, CubeMove("R", 1))
        assert cube.goal_fitness(one_turn) < 1.0
        assert not cube.is_goal(one_turn)

    def test_invalid_states_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            PocketCubeDomain(((0, 0, 2, 3, 4, 5, 6, 7), (0,) * 8))
        with pytest.raises(ValueError, match="divisible by 3"):
            PocketCubeDomain(((0, 1, 2, 3, 4, 5, 6, 7), (1, 0, 0, 0, 0, 0, 0, 0)))
        with pytest.raises(ValueError, match="DBL"):
            PocketCubeDomain(((6, 1, 2, 3, 4, 5, 0, 7), (0,) * 8))

    def test_decode_key_constant(self, cube):
        a = cube.decode_key(cube.initial_state)
        b = cube.decode_key(scrambled_state(7, make_rng(2)))
        assert a == b


class TestSolving:
    def test_bfs_inverts_short_scramble(self):
        start = scrambled_state(4, make_rng(3))
        domain = PocketCubeDomain(start)
        r = breadth_first_search(domain, max_expansions=500_000)
        assert r.solved
        assert r.plan_length <= 4  # optimal never exceeds the scramble

    def test_astar_with_fitness_gap(self):
        start = scrambled_state(5, make_rng(4))
        domain = PocketCubeDomain(start)
        r = astar(domain, heuristic=goal_gap(domain, scale=3.0), max_expansions=500_000)
        assert r.solved
        final = domain.execute(r.plan)
        assert domain.is_goal(final)

    def test_ga_solves_shallow_scramble(self):
        start = scrambled_state(4, make_rng(5))
        domain = PocketCubeDomain(start)
        cfg = GAConfig(population_size=150, generations=80, max_len=30, init_length=8)
        outcome = GAPlanner(domain, cfg, multiphase=3, seed=6).solve()
        assert outcome.solved
        assert domain.is_goal(domain.execute(outcome.plan))
