"""Tests for the sliding-tile domain."""

import pytest

from repro.core import make_rng
from repro.domains import (
    SlidingTileDomain,
    TileMove,
    is_solvable,
    manhattan_distance,
    random_solvable_start,
    reversed_start,
)
from repro.domains.sliding_tile import goal_tuple


class TestConstruction:
    def test_defaults(self, tile3):
        assert tile3.initial_state == reversed_start(3)
        assert tile3.goal_state == (1, 2, 3, 4, 5, 6, 7, 8, 0)
        assert tile3.tile_count == 8
        assert tile3.distance_bound == 2 * 2 * 8  # 2(n-1)·T

    def test_too_small_board(self):
        with pytest.raises(ValueError):
            SlidingTileDomain(1)

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            SlidingTileDomain(2, initial=(1, 1, 2, 0))

    def test_unsolvable_rejected(self):
        # Swap two tiles of the goal: odd permutation.
        with pytest.raises(ValueError, match="not reachable"):
            SlidingTileDomain(3, initial=(2, 1, 3, 4, 5, 6, 7, 8, 0))

    def test_unsolvable_accepted_when_check_disabled(self):
        d = SlidingTileDomain(3, initial=(2, 1, 3, 4, 5, 6, 7, 8, 0), check_solvable=False)
        assert d.initial_state[0] == 2


class TestSolvability:
    def test_reversed_start_solvable_all_sizes(self):
        for n in (2, 3, 4, 5):
            assert is_solvable(reversed_start(n), n)

    def test_goal_solvable_from_itself(self):
        assert is_solvable(goal_tuple(3), 3)

    def test_single_swap_unsolvable(self):
        assert not is_solvable((2, 1, 3, 4, 5, 6, 7, 8, 0), 3)

    def test_even_board_row_parity(self):
        # Moving the blank within a column changes the row term and the
        # inversion count together — still solvable.
        g = goal_tuple(4)
        state = list(g)
        # Slide blank up twice: swap (15, blank) vertically.
        state[15], state[11] = state[11], state[15]
        assert is_solvable(tuple(state), 4)

    def test_random_solvable_start(self):
        rng = make_rng(0)
        for _ in range(10):
            s = random_solvable_start(3, rng)
            assert is_solvable(s, 3)

    def test_half_of_permutations_solvable(self):
        rng = make_rng(1)
        solvable = sum(
            is_solvable(tuple(int(x) for x in rng.permutation(9)), 3) for _ in range(400)
        )
        assert 150 < solvable < 250


class TestMoves:
    def test_corner_has_two_moves(self, tile3):
        # Blank at top-left in the reversed start.
        ops = tile3.valid_operations(tile3.initial_state)
        assert {op.direction for op in ops} == {"down", "right"}

    def test_center_has_four_moves(self, tile3):
        state = (1, 2, 3, 4, 0, 5, 6, 7, 8)
        ops = tile3.valid_operations(state)
        assert len(ops) == 4

    def test_apply_swaps_blank(self, tile3):
        state = (1, 2, 3, 4, 0, 5, 6, 7, 8)
        nxt = tile3.apply(state, TileMove("up"))
        assert nxt == (1, 0, 3, 4, 2, 5, 6, 7, 8)

    def test_invalid_apply_raises(self, tile3):
        with pytest.raises(ValueError, match="invalid"):
            tile3.apply(tile3.initial_state, TileMove("up"))

    def test_moves_preserve_permutation(self, tile3, rng):
        state = tile3.initial_state
        for _ in range(200):
            ops = tile3.valid_operations(state)
            state = tile3.apply(state, ops[int(rng.integers(0, len(ops)))])
            assert sorted(state) == list(range(9))

    def test_move_then_inverse_is_identity(self, tile3):
        state = (1, 2, 3, 4, 0, 5, 6, 7, 8)
        inverse = {"up": "down", "down": "up", "left": "right", "right": "left"}
        for d in ("up", "down", "left", "right"):
            back = tile3.apply(tile3.apply(state, TileMove(d)), TileMove(inverse[d]))
            assert back == state


class TestGoalFitness:
    def test_goal_is_one(self, tile3):
        assert tile3.goal_fitness(tile3.goal_state) == 1.0
        assert tile3.is_goal(tile3.goal_state)

    def test_fitness_in_unit_interval(self, tile3, rng):
        state = tile3.initial_state
        for _ in range(100):
            ops = tile3.valid_operations(state)
            state = tile3.apply(state, ops[int(rng.integers(0, len(ops)))])
            assert 0.0 <= tile3.goal_fitness(state) <= 1.0

    def test_equation_six(self, tile3):
        """goal fitness = 1 - manhattan / (D·T)."""
        s = tile3.initial_state
        expected = 1.0 - tile3.manhattan(s) / (2 * (3 - 1) * 8)
        assert tile3.goal_fitness(s) == pytest.approx(expected)

    def test_manhattan_matches_free_function(self, tile3):
        s = tile3.initial_state
        assert tile3.manhattan(s) == manhattan_distance(s, tile3.goal_state, 3)

    def test_one_move_from_goal(self, tile3):
        state = (1, 2, 3, 4, 5, 6, 7, 0, 8)  # blank one left of home
        assert tile3.manhattan(state) == 1
        assert not tile3.is_goal(state)


class TestCustomGoals:
    def test_custom_goal_pair(self):
        initial = (1, 2, 3, 4, 5, 6, 7, 8, 0)
        goal = (1, 2, 3, 4, 5, 6, 0, 7, 8)
        d = SlidingTileDomain(3, initial=initial, goal=goal)
        assert d.is_goal(goal)
        assert not d.is_goal(initial)
