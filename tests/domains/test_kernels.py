"""Unit tests for the domain kernels (the array-native ABI, DESIGN.md §12).

Every kernel must agree with its domain's object API on every exposed
table entry — the exactness contract the vector decoder builds on.  The
specialised kernels (Hanoi, sliding tile, pocket cube) are checked by
random walks through the object API; Hanoi's dense table exhaustively.
"""

import numpy as np
import pytest

from repro.core import make_rng
from repro.domains import HanoiDomain, PocketCubeDomain, SlidingTileDomain
from repro.domains.hanoi import _MAX_KERNEL_DISKS
from repro.domains.kernels import TableKernel, cached_kernel, grow
from repro.domains.pocket_cube import scrambled_state


def random_walk_states(domain, steps, seed):
    """States visited by a random walk through the object API."""
    rng = make_rng(seed)
    state = domain.initial_state
    out = [state]
    for _ in range(steps):
        ops = domain.valid_operations(state)
        if not ops:
            break
        state = domain.apply(state, ops[int(rng.integers(0, len(ops)))])
        out.append(state)
    return out


def assert_kernel_matches_domain(domain, states):
    """Every table entry for *states* equals the object API's answer."""
    kernel = domain.kernel()
    assert kernel is not None
    for state in states:
        sid = kernel.intern(state)
        ops = tuple(domain.valid_operations(state))
        assert int(kernel.valid_count[sid]) == len(ops)
        assert tuple(kernel.operations_of(sid)) == ops
        assert float(kernel.goal_fit[sid]) == float(domain.goal_fitness(state))
        assert bool(kernel.goal_mask[sid]) == domain.is_goal(state)
        assert kernel.state_key_of(sid) == domain.state_key(state)
        assert kernel.decode_key_of(sid) == domain.decode_key(state)
        assert kernel.id_for_key(domain.state_key(state)) == sid
        if ops:
            slots = np.arange(len(ops), dtype=np.int64)
            ids = np.full(len(ops), sid, dtype=np.int64)
            if (kernel.succ[sid, : len(ops)] < 0).any():
                kernel.fill_transitions(ids, slots)
            for slot, op in enumerate(ops):
                nid = int(kernel.succ[sid, slot])
                assert nid >= 0
                assert kernel.state_key_of(nid) == domain.state_key(
                    domain.apply(state, op)
                )


class TestHanoiKernel:
    def test_exhaustive_table_matches_domain(self):
        domain = HanoiDomain(3)
        kernel = domain.kernel()
        # Dense: every one of the 3^n states is pre-tabulated.
        assert kernel.n_states == 3**3
        states = [kernel.state_of(sid) for sid in range(kernel.n_states)]
        assert_kernel_matches_domain(domain, states)

    def test_size_cap_returns_none(self):
        assert HanoiDomain(_MAX_KERNEL_DISKS + 1).kernel() is None
        assert HanoiDomain(_MAX_KERNEL_DISKS + 1).kernel() is None  # cached miss

    def test_kernel_cached_per_instance(self):
        domain = HanoiDomain(4)
        assert domain.kernel() is domain.kernel()
        assert HanoiDomain(4).kernel() is not domain.kernel()


class TestTileKernel:
    def test_random_walk_matches_domain(self):
        domain = SlidingTileDomain(3)
        assert_kernel_matches_domain(domain, random_walk_states(domain, 200, 0))

    def test_decode_key_is_blank_position(self):
        domain = SlidingTileDomain(3)
        kernel = domain.kernel()
        state = domain.initial_state
        sid = kernel.intern(state)
        assert kernel.decode_key_of(sid) == domain.decode_key(state)

    def test_reset_bumps_epoch_and_clears(self):
        domain = SlidingTileDomain(3)
        kernel = domain.kernel()
        kernel.intern(domain.initial_state)
        epoch = kernel.epoch
        kernel.reset()
        assert kernel.epoch == epoch + 1
        assert kernel.id_for_key(domain.state_key(domain.initial_state)) is None


class TestCubeKernel:
    def test_random_walk_matches_domain(self):
        domain = PocketCubeDomain(scrambled_state(8, make_rng(2)))
        assert_kernel_matches_domain(domain, random_walk_states(domain, 120, 3))

    def test_solved_state_is_goal(self):
        domain = PocketCubeDomain()
        kernel = domain.kernel()
        sid = kernel.intern(domain.initial_state)
        assert bool(kernel.goal_mask[sid]) and float(kernel.goal_fit[sid]) == 1.0


class TestTableKernel:
    def test_matches_any_domain(self):
        # The generic kernel against a specialised domain: same contract.
        domain = HanoiDomain(3)
        kernel = TableKernel(domain)
        states = random_walk_states(domain, 60, 4)
        for state in states:
            sid = kernel.intern(state)
            assert int(kernel.valid_count[sid]) == len(domain.valid_operations(state))
            assert float(kernel.goal_fit[sid]) == float(domain.goal_fitness(state))

    def test_overflow_flag(self):
        domain = HanoiDomain(3)
        kernel = TableKernel(domain, max_states=2)
        for state in random_walk_states(domain, 10, 5):
            kernel.intern(state)
        assert kernel.overflowed
        kernel.reset()
        assert not kernel.overflowed

    def test_rejects_bad_max_states(self):
        with pytest.raises(ValueError):
            TableKernel(HanoiDomain(3), max_states=0)


class TestHelpers:
    def test_grow_doubles_and_fills(self):
        arr = np.zeros((4, 2), dtype=np.int32)
        out = grow(arr, 5, fill=-1)
        assert out.shape[0] >= 5 and (out[4:] == -1).all()
        assert grow(out, 3) is out  # no-op when capacity suffices

    def test_cached_kernel_negative_result(self):
        domain = HanoiDomain(3)
        calls = []

        def factory(d):
            calls.append(d)
            return None

        assert cached_kernel(domain, factory) is None
        assert cached_kernel(domain, factory) is None
        assert len(calls) == 1  # the negative probe is cached too
